use serde::{Deserialize, Serialize};

use crate::{FailureModel, Flow, ModelError, Probability, Result, ServiceId};

/// A *simple service* (paper §3.1): no cascading requests, reliability given
/// by a published closed-form [`FailureModel`] of one abstract demand
/// parameter.
///
/// # Examples
///
/// ```
/// use archrel_model::{FailureModel, SimpleService};
///
/// let cpu = SimpleService::new(
///     "cpu1",
///     "n",
///     FailureModel::ExponentialRate { rate: 1e-9, capacity: 1e9 },
/// );
/// let p = cpu.failure_probability(1e6).unwrap();
/// assert!(p.value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleService {
    id: ServiceId,
    formal_param: String,
    model: FailureModel,
}

impl SimpleService {
    /// Creates a simple service with one abstract formal parameter (the
    /// demand: operations for CPUs, bytes for networks).
    pub fn new(
        id: impl Into<ServiceId>,
        formal_param: impl Into<String>,
        model: FailureModel,
    ) -> Self {
        SimpleService {
            id: id.into(),
            formal_param: formal_param.into(),
            model,
        }
    }

    /// The service identifier.
    pub fn id(&self) -> &ServiceId {
        &self.id
    }

    /// Name of the abstract demand parameter.
    pub fn formal_param(&self) -> &str {
        &self.formal_param
    }

    /// The published failure law.
    pub fn model(&self) -> &FailureModel {
        &self.model
    }

    /// Failure probability when serving `demand` work units.
    ///
    /// # Errors
    ///
    /// See [`FailureModel::failure_probability`].
    pub fn failure_probability(&self, demand: f64) -> Result<Probability> {
        self.model.failure_probability(demand)
    }
}

/// A *composite service* (paper §3.2): a service whose analytic interface is
/// a probabilistic [`Flow`] of cascading requests over its formal parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeService {
    id: ServiceId,
    formal_params: Vec<String>,
    flow: Flow,
}

impl CompositeService {
    /// Creates a composite service.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedFlow`] when a flow transition or call
    /// references a formal parameter the service does not declare (free
    /// parameters must be a subset of `formal_params`).
    pub fn new(id: impl Into<ServiceId>, formal_params: Vec<String>, flow: Flow) -> Result<Self> {
        let id = id.into();
        // Every expression in the flow may only mention declared formals.
        let declared: std::collections::BTreeSet<&str> =
            formal_params.iter().map(String::as_str).collect();
        let check = |expr: &archrel_expr::Expr, what: &str| -> Result<()> {
            for p in expr.free_params() {
                if !declared.contains(p.as_str()) {
                    return Err(ModelError::MalformedFlow {
                        service: id.to_string(),
                        reason: format!("{what} references undeclared parameter `{p}`"),
                    });
                }
            }
            Ok(())
        };
        for t in flow.transitions() {
            check(
                &t.probability,
                &format!("transition `{}` -> `{}`", t.from, t.to),
            )?;
        }
        for state in flow.states() {
            for call in &state.calls {
                for (name, expr) in &call.actual_params {
                    check(
                        expr,
                        &format!("actual parameter `{name}` of `{}`", call.target),
                    )?;
                }
                if let Some(c) = &call.connector {
                    for (name, expr) in &c.actual_params {
                        check(
                            expr,
                            &format!("connector parameter `{name}` of `{}`", c.connector),
                        )?;
                    }
                }
            }
        }
        Ok(CompositeService {
            id,
            formal_params,
            flow,
        })
    }

    /// The service identifier.
    pub fn id(&self) -> &ServiceId {
        &self.id
    }

    /// Declared formal parameters.
    pub fn formal_params(&self) -> &[String] {
        &self.formal_params
    }

    /// The usage-profile flow.
    pub fn flow(&self) -> &Flow {
        &self.flow
    }
}

/// Any service of the unified model (paper §2: resources *and* connectors
/// both offer services; §3 splits them into simple and composite).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Service {
    /// A simple service with a closed-form failure law.
    Simple(SimpleService),
    /// A composite service with a request flow.
    Composite(CompositeService),
}

impl Service {
    /// The service identifier.
    pub fn id(&self) -> &ServiceId {
        match self {
            Service::Simple(s) => s.id(),
            Service::Composite(s) => s.id(),
        }
    }

    /// Formal parameter names (one abstract demand parameter for simple
    /// services).
    pub fn formal_params(&self) -> Vec<&str> {
        match self {
            Service::Simple(s) => vec![s.formal_param()],
            Service::Composite(s) => s.formal_params().iter().map(String::as_str).collect(),
        }
    }

    /// The flow, when composite.
    pub fn as_composite(&self) -> Option<&CompositeService> {
        match self {
            Service::Composite(s) => Some(s),
            Service::Simple(_) => None,
        }
    }

    /// The failure law, when simple.
    pub fn as_simple(&self) -> Option<&SimpleService> {
        match self {
            Service::Simple(s) => Some(s),
            Service::Composite(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowBuilder, FlowState, ServiceCall, StateId};
    use archrel_expr::Expr;

    fn flow_calling(param_expr: Expr) -> Flow {
        FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("cpu").with_param("n", param_expr)],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap()
    }

    #[test]
    fn composite_accepts_declared_params() {
        let s = CompositeService::new(
            "sort",
            vec!["list".to_string()],
            flow_calling(Expr::param("list") * Expr::param("list").log2()),
        )
        .unwrap();
        assert_eq!(s.formal_params(), &["list".to_string()]);
        assert_eq!(s.id().as_str(), "sort");
    }

    #[test]
    fn composite_rejects_undeclared_params() {
        let err = CompositeService::new(
            "sort",
            vec!["list".to_string()],
            flow_calling(Expr::param("size")),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
        assert!(err.to_string().contains("size"));
    }

    #[test]
    fn composite_rejects_undeclared_params_in_transitions() {
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .state(FlowState::new("b", vec![]))
            .transition(StateId::Start, "a", Expr::param("q"))
            .transition(StateId::Start, "b", Expr::one() - Expr::param("q"))
            .transition("a", StateId::End, Expr::one())
            .transition("b", StateId::End, Expr::one())
            .build()
            .unwrap();
        let err = CompositeService::new("svc", vec![], flow).unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn composite_rejects_undeclared_connector_params() {
        use crate::ConnectorBinding;
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("sort")
                    .with_param("list", Expr::param("list"))
                    .via(ConnectorBinding::new("rpc").with_param("ip", Expr::param("bytes")))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let err = CompositeService::new("search", vec!["list".to_string()], flow).unwrap_err();
        assert!(err.to_string().contains("bytes"));
    }

    #[test]
    fn service_accessors() {
        let simple = Service::Simple(SimpleService::new("cpu", "n", FailureModel::Perfect));
        assert!(simple.as_simple().is_some());
        assert!(simple.as_composite().is_none());
        assert_eq!(simple.formal_params(), vec!["n"]);

        let composite = Service::Composite(
            CompositeService::new("s", vec![], flow_calling(Expr::num(1.0))).unwrap(),
        );
        assert!(composite.as_composite().is_some());
        assert_eq!(composite.id().as_str(), "s");
    }
}
