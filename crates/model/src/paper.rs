//! The paper's §4 example: a `search` service assembled with a `sort`
//! service, either **locally** (same node, LPC connector) or **remotely**
//! (two nodes, RPC connector over a network).
//!
//! Every constant the paper leaves unspecified (speeds, hardware failure
//! rates, marshalling cost, bandwidth, ...) is a field of [`PaperParams`];
//! the defaults are the calibration documented in `EXPERIMENTS.md`, chosen so
//! Figure 6's qualitative claims hold. The same builders feed the unit tests,
//! the integration tests, the Monte Carlo simulator, and the Figure 6
//! reproduction binary.
//!
//! # Examples
//!
//! ```
//! use archrel_model::paper;
//!
//! let params = paper::PaperParams::default();
//! let local = paper::local_assembly(&params).unwrap();
//! let remote = paper::remote_assembly(&params).unwrap();
//! assert!(local.service(&paper::LPC.into()).is_some());
//! assert!(remote.service(&paper::RPC.into()).is_some());
//! ```

use archrel_expr::{Bindings, Expr};

use crate::{
    catalog, connector, Assembly, AssemblyBuilder, CompositeService, ConnectorBinding, FlowBuilder,
    FlowState, InternalFailureModel, Result, Service, ServiceCall, StateId,
};

/// Service id of the top-level search service.
pub const SEARCH: &str = "search";
/// Service id of the co-located sort service (local assembly).
pub const SORT_LOCAL: &str = "sort1";
/// Service id of the remote sort service (remote assembly).
pub const SORT_REMOTE: &str = "sort2";
/// Service id of the client node's CPU.
pub const CPU1: &str = "cpu1";
/// Service id of the server node's CPU (remote assembly only).
pub const CPU2: &str = "cpu2";
/// Service id of the network between the nodes (remote assembly only).
pub const NET: &str = "net12";
/// Service id of the local-procedure-call connector (local assembly).
pub const LPC: &str = "lpc";
/// Service id of the remote-procedure-call connector (remote assembly).
pub const RPC: &str = "rpc";
/// Local-processing connector: search → cpu1.
pub const LOC1: &str = "loc1";
/// Local-processing connector: sort → its node's CPU.
pub const LOC2: &str = "loc2";

/// All parameters of the §4 example.
///
/// Fields named after the paper's symbols. The paper fixes ϕ₂ = 1e-7 and
/// sweeps ϕ₁ ∈ {1e-6, 5e-6} and γ ∈ {1e-1, 5e-2, 2.5e-2, 5e-3}; everything
/// else is our documented calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperParams {
    /// Probability that the list is not already sorted (the flow branches to
    /// the sort request with this probability).
    pub q: f64,
    /// Software failure rate ϕ of the search service's own code.
    pub phi_search: f64,
    /// Software failure rate ϕ₁ of the local sort service.
    pub phi_sort1: f64,
    /// Software failure rate ϕ₂ of the remote sort service.
    pub phi_sort2: f64,
    /// Hardware failure rate λ₁ of the client node's CPU.
    pub lambda1: f64,
    /// Hardware failure rate λ₂ of the server node's CPU.
    pub lambda2: f64,
    /// Speed s₁ (operations/time-unit) of the client node's CPU.
    pub s1: f64,
    /// Speed s₂ of the server node's CPU.
    pub s2: f64,
    /// Failure rate γ of the network.
    pub gamma: f64,
    /// Bandwidth b (bytes/time-unit) of the network.
    pub bandwidth: f64,
    /// Marshalling cost c (operations per payload byte) of the RPC connector.
    pub c: f64,
    /// Wire expansion m (bytes per payload byte) of the RPC connector.
    pub m: f64,
    /// Control-transfer cost l (operations) of the LPC connector.
    pub l: f64,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            q: 0.9,
            phi_search: 1e-7,
            phi_sort1: 1e-6,
            phi_sort2: 1e-7,
            lambda1: 1e-12,
            lambda2: 1e-12,
            s1: 1e9,
            s2: 1e9,
            gamma: 5e-3,
            bandwidth: 625.0,
            c: 50.0,
            m: 1.0,
            l: 100.0,
        }
    }
}

impl PaperParams {
    /// Returns a copy with a different network failure rate γ (the Figure 6
    /// sweep axis).
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Returns a copy with a different local-sort software failure rate ϕ₁.
    #[must_use]
    pub fn with_phi_sort1(mut self, phi: f64) -> Self {
        self.phi_sort1 = phi;
        self
    }
}

/// Bindings for one invocation of the search service: `elem` (size of the
/// searched element), `list` (list size), `res` (size of the returned
/// result).
pub fn search_bindings(elem: f64, list: f64, res: f64) -> Bindings {
    Bindings::new()
        .with("elem", elem)
        .with("list", list)
        .with("res", res)
}

/// The `sortx` service (paper Fig. 1 right): one state requesting
/// `cpu(list · log₂ list)` through a local-processing connector, with the
/// software failure law of eq. 14 (rate ϕₓ) as internal failure.
fn sort_service(name: &str, cpu: &str, phi: f64) -> Result<Service> {
    let cost = Expr::param("list") * Expr::param("list").log2();
    let flow = FlowBuilder::new()
        .state(FlowState::new(
            "sorting",
            vec![ServiceCall::new(cpu)
                .with_param(catalog::CPU_PARAM, cost)
                .via(catalog::local_binding(LOC2))
                .with_internal(InternalFailureModel::PerOperation { phi })],
        ))
        .transition(StateId::Start, "sorting", Expr::one())
        .transition("sorting", StateId::End, Expr::one())
        .build()?;
    Ok(Service::Composite(CompositeService::new(
        name,
        vec!["list".to_string()],
        flow,
    )?))
}

/// The `search` service (paper Fig. 1 left / Fig. 5): with probability `q`
/// the list must first be sorted (state 1: request to `sort` through the
/// given connector), then the search itself runs `log₂ list` operations on
/// `cpu1` (state 2), with the search code's software failure law attached.
fn search_service(params: &PaperParams, sort_id: &str, connector_id: &str) -> Result<Service> {
    let list = Expr::param("list");
    let ip = Expr::param("elem") + list.clone();
    let op = Expr::param("res");

    let sort_state = FlowState::new(
        "1",
        vec![ServiceCall::new(sort_id)
            .with_param("list", list.clone())
            .via(
                ConnectorBinding::new(connector_id)
                    .with_param(connector::IP_PARAM, ip)
                    .with_param(connector::OP_PARAM, op),
            )
            // The paper assumes the method call itself is perfectly reliable
            // (Pfail_int(call(sortx, list)) = 0, below eq. 21).
            .with_internal(InternalFailureModel::None)],
    );
    let scan_state = FlowState::new(
        "2",
        vec![ServiceCall::new(CPU1)
            .with_param(catalog::CPU_PARAM, list.log2())
            .via(catalog::local_binding(LOC1))
            .with_internal(InternalFailureModel::PerOperation {
                phi: params.phi_search,
            })],
    );

    let flow = FlowBuilder::new()
        .state(sort_state)
        .state(scan_state)
        .transition(StateId::Start, "1", Expr::num(params.q))
        .transition(StateId::Start, "2", Expr::num(1.0 - params.q))
        .transition("1", "2", Expr::one())
        .transition("2", StateId::End, Expr::one())
        .build()?;
    Ok(Service::Composite(CompositeService::new(
        SEARCH,
        vec!["elem".to_string(), "list".to_string(), "res".to_string()],
        flow,
    )?))
}

/// The **local assembly** (paper Fig. 3): `search` and `sort1` on the same
/// node `cpu1`, connected by an LPC connector.
///
/// # Errors
///
/// Propagates model-construction errors (none for valid parameters).
pub fn local_assembly(params: &PaperParams) -> Result<Assembly> {
    AssemblyBuilder::new()
        .service(catalog::cpu_resource(CPU1, params.s1, params.lambda1))
        .service(catalog::local_connector(LOC1))
        .service(catalog::local_connector(LOC2))
        .service(connector::lpc_connector(LPC, CPU1, params.l)?)
        .service(sort_service(SORT_LOCAL, CPU1, params.phi_sort1)?)
        .service(search_service(params, SORT_LOCAL, LPC)?)
        .build()
}

/// The **remote assembly** (paper Fig. 4): `search` on `cpu1`, `sort2` on
/// `cpu2`, connected by an RPC connector over `net12`.
///
/// # Errors
///
/// Propagates model-construction errors (none for valid parameters).
pub fn remote_assembly(params: &PaperParams) -> Result<Assembly> {
    AssemblyBuilder::new()
        .service(catalog::cpu_resource(CPU1, params.s1, params.lambda1))
        .service(catalog::cpu_resource(CPU2, params.s2, params.lambda2))
        .service(catalog::network_resource(
            NET,
            params.bandwidth,
            params.gamma,
        ))
        .service(catalog::local_connector(LOC1))
        .service(catalog::local_connector(LOC2))
        .service(connector::rpc_connector(&connector::RpcConfig {
            name: RPC.into(),
            client_cpu: CPU1.into(),
            server_cpu: CPU2.into(),
            network: NET.into(),
            marshal_ops_per_byte: params.c,
            bytes_per_byte: params.m,
        })?)
        .service(sort_service(SORT_REMOTE, CPU2, params.phi_sort2)?)
        .service(search_service(params, SORT_REMOTE, RPC)?)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_assembly_validates() {
        let a = local_assembly(&PaperParams::default()).unwrap();
        assert_eq!(a.len(), 6);
        // Recursion levels of §4: simple services at the bottom.
        let order = a.topological_order().unwrap();
        let pos = |name: &str| order.iter().position(|s| s.as_str() == name).unwrap();
        assert!(pos(CPU1) < pos(LPC));
        assert!(pos(LPC) < pos(SEARCH));
        assert!(pos(SORT_LOCAL) < pos(SEARCH));
    }

    #[test]
    fn remote_assembly_validates() {
        let a = remote_assembly(&PaperParams::default()).unwrap();
        assert_eq!(a.len(), 8);
        assert!(a.service(&NET.into()).is_some());
        assert!(a.service(&CPU2.into()).is_some());
        let order = a.topological_order().unwrap();
        let pos = |name: &str| order.iter().position(|s| s.as_str() == name).unwrap();
        assert!(pos(NET) < pos(RPC));
        assert!(pos(RPC) < pos(SEARCH));
    }

    #[test]
    fn search_flow_matches_fig1() {
        let a = local_assembly(&PaperParams::default()).unwrap();
        let search = a.service(&SEARCH.into()).unwrap().as_composite().unwrap();
        assert_eq!(search.formal_params(), &["elem", "list", "res"]);
        assert_eq!(search.flow().states().len(), 2);
        // Start branches with q / 1-q.
        let starts: Vec<f64> = search
            .flow()
            .outgoing(&StateId::Start)
            .map(|t| t.probability.as_const().unwrap())
            .collect();
        let sum: f64 = starts.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_helpers() {
        let p = PaperParams::default().with_gamma(0.1).with_phi_sort1(5e-6);
        assert_eq!(p.gamma, 0.1);
        assert_eq!(p.phi_sort1, 5e-6);
        // Untouched fields keep their defaults.
        assert_eq!(p.phi_sort2, 1e-7);
    }

    #[test]
    fn bindings_cover_search_formals() {
        let b = search_bindings(4.0, 1000.0, 1.0);
        assert_eq!(b.get("elem"), Some(4.0));
        assert_eq!(b.get("list"), Some(1000.0));
        assert_eq!(b.get("res"), Some(1.0));
    }
}
