//! The unified service model of Grassi's architecture-based reliability
//! prediction (paper §2–§3).
//!
//! Everything — software components, physical resources (CPUs, networks) and
//! *connectors* (LPC, RPC, deployment links) — is modeled uniformly as an
//! entity that **offers** and **requires** services:
//!
//! - [`SimpleService`]: a service with a published closed-form failure model
//!   ([`FailureModel`], eqs. 1–2) and a single abstract demand parameter
//!   (operations for CPUs, bytes for networks).
//! - [`CompositeService`]: a service whose *analytic interface* is a
//!   probabilistic [`Flow`] of cascading [`ServiceCall`]s. Each flow state
//!   groups calls under a [`CompletionModel`] (AND / OR / k-out-of-n) and a
//!   [`DependencyModel`] (independent / shared), and every actual parameter
//!   is an [`archrel_expr::Expr`] over the service's formal parameters —
//!   the parametric dependency (`ap_j = ap_j(fp)`) the paper argues is
//!   essential for compositional analysis.
//! - [`Assembly`]: a closed registry of services, validated so every call
//!   target exists, actual parameters cover the callee's formal parameters,
//!   and `Shared` states really share one service through one connector.
//! - [`connector`]: ready-made LPC / RPC / local-processing connectors with
//!   the exact flows of the paper's Figure 2.
//! - [`paper`]: the §4 example (search + sort, local and remote assemblies)
//!   parameterized over every constant, reused by tests, examples, the
//!   simulator and the Figure 6 reproduction.
//!
//! # Examples
//!
//! Build a CPU resource and query its failure law (eq. 1):
//!
//! ```
//! use archrel_model::{catalog, Service};
//!
//! let cpu = catalog::cpu_resource("cpu1", 1e9, 1e-9);
//! let Service::Simple(s) = &cpu else { panic!("cpu is simple") };
//! let pfail = s.failure_probability(1e6).unwrap();
//! assert!((pfail.value() - (1.0 - (-1e-9f64 * 1e6 / 1e9).exp())).abs() < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assembly;
pub mod catalog;
pub mod connector;
mod error;
mod failure;
mod flow;
mod ids;
pub mod paper;
mod prob;
mod service;

pub use assembly::{Assembly, AssemblyBuilder};
pub use error::ModelError;
pub use failure::{FailureModel, InternalFailureModel};
pub use flow::{
    CompletionModel, ConnectorBinding, DependencyModel, Flow, FlowBuilder, FlowState, ServiceCall,
    StateId,
};
pub use ids::ServiceId;
pub use prob::Probability;
pub use service::{CompositeService, Service, SimpleService};

/// Convenience result alias for fallible model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
