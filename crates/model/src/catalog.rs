//! Convenience constructors for the stock resources of the paper: CPU
//! ("process") services, network ("transmit") services, and the pure-modeling
//! "local processing" connectors of §3.1.

use archrel_expr::Expr;

use crate::{ConnectorBinding, FailureModel, Service, ServiceId, SimpleService};

/// Name of the abstract demand parameter of CPU services: the number of
/// operations to execute.
pub const CPU_PARAM: &str = "n";

/// Name of the abstract demand parameter of network services: the number of
/// bytes to transmit.
pub const NET_PARAM: &str = "b";

/// Name of the (unused) formal parameter of local-processing connectors.
pub const LOCAL_PARAM: &str = "x";

/// A CPU resource offering a processing service (paper eq. 1):
/// `Pfail(cpu, N) = 1 − e^(−λ·N/s)` with speed `s` (operations/time-unit)
/// and failure rate `λ` (failures/time-unit).
///
/// # Examples
///
/// ```
/// use archrel_model::catalog;
///
/// let cpu = catalog::cpu_resource("cpu1", 1e9, 1e-12);
/// assert_eq!(cpu.id().as_str(), "cpu1");
/// ```
pub fn cpu_resource(name: impl Into<ServiceId>, speed: f64, failure_rate: f64) -> Service {
    Service::Simple(SimpleService::new(
        name,
        CPU_PARAM,
        FailureModel::ExponentialRate {
            rate: failure_rate,
            capacity: speed,
        },
    ))
}

/// A network resource offering a communication service (paper eq. 2):
/// `Pfail(net, B) = 1 − e^(−β·B/b)` with bandwidth `b` (bytes/time-unit) and
/// failure rate `β`.
pub fn network_resource(name: impl Into<ServiceId>, bandwidth: f64, failure_rate: f64) -> Service {
    Service::Simple(SimpleService::new(
        name,
        NET_PARAM,
        FailureModel::ExponentialRate {
            rate: failure_rate,
            capacity: bandwidth,
        },
    ))
}

/// A "local processing" connector (paper §3.1): a pure modeling artifact
/// associating a software service with the processing resource of its node.
/// It uses no resources and its failure probability is zero.
pub fn local_connector(name: impl Into<ServiceId>) -> Service {
    Service::Simple(SimpleService::new(name, LOCAL_PARAM, FailureModel::Perfect))
}

/// A [`ConnectorBinding`] routing a call through a [`local_connector`]
/// (supplies the connector's dummy parameter).
pub fn local_binding(name: impl Into<ServiceId>) -> ConnectorBinding {
    ConnectorBinding::new(name).with_param(LOCAL_PARAM, Expr::zero())
}

/// A black-box service with a fixed per-invocation failure probability —
/// handy for third-party services that publish a single reliability number.
pub fn blackbox_service(
    name: impl Into<ServiceId>,
    param: impl Into<String>,
    failure_probability: f64,
) -> Service {
    Service::Simple(SimpleService::new(
        name,
        param,
        FailureModel::Constant {
            probability: failure_probability,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_resource_matches_eq1() {
        let Service::Simple(s) = cpu_resource("cpu", 2e9, 1e-9) else {
            panic!("cpu is simple");
        };
        let p = s.failure_probability(1e6).unwrap().value();
        assert!((p - (1.0 - (-1e-9f64 * 1e6 / 2e9).exp())).abs() < 1e-18);
        assert_eq!(s.formal_param(), CPU_PARAM);
    }

    #[test]
    fn network_resource_matches_eq2() {
        let Service::Simple(s) = network_resource("net", 1e6, 1e-3) else {
            panic!("net is simple");
        };
        let p = s.failure_probability(5000.0).unwrap().value();
        assert!((p - (1.0 - (-1e-3f64 * 5000.0 / 1e6).exp())).abs() < 1e-18);
        assert_eq!(s.formal_param(), NET_PARAM);
    }

    #[test]
    fn local_connector_never_fails() {
        let Service::Simple(s) = local_connector("loc1") else {
            panic!("loc is simple");
        };
        assert!(s.failure_probability(1e12).unwrap().is_zero());
    }

    #[test]
    fn local_binding_covers_the_dummy_param() {
        let b = local_binding("loc1");
        assert_eq!(b.connector.as_str(), "loc1");
        assert_eq!(b.actual_params.len(), 1);
        assert_eq!(b.actual_params[0].0, LOCAL_PARAM);
    }

    #[test]
    fn blackbox_constant_failure() {
        let Service::Simple(s) = blackbox_service("pay", "amount", 0.01) else {
            panic!("blackbox is simple");
        };
        assert_eq!(s.failure_probability(1.0).unwrap().value(), 0.01);
        assert_eq!(s.failure_probability(1e9).unwrap().value(), 0.01);
    }
}
