use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifier of a service (or of the resource/connector offering it — the
/// paper identifies single-service resources with their service, §3.1).
///
/// Cheap to clone; compares and hashes by name.
///
/// # Examples
///
/// ```
/// use archrel_model::ServiceId;
///
/// let a = ServiceId::new("cpu1");
/// let b: ServiceId = "cpu1".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "cpu1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceId(Arc<str>);

impl ServiceId {
    /// Creates an identifier from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        ServiceId(Arc::from(name.as_ref()))
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceId {
    fn from(s: &str) -> Self {
        ServiceId::new(s)
    }
}

impl From<String> for ServiceId {
    fn from(s: String) -> Self {
        ServiceId::new(&s)
    }
}

impl AsRef<str> for ServiceId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for ServiceId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn equality_and_ordering() {
        assert_eq!(ServiceId::new("a"), ServiceId::new("a"));
        assert!(ServiceId::new("a") < ServiceId::new("b"));
    }

    #[test]
    fn usable_as_map_key_via_str_borrow() {
        let mut m: BTreeMap<ServiceId, u32> = BTreeMap::new();
        m.insert("cpu1".into(), 7);
        assert_eq!(m.get("cpu1"), Some(&7));
    }

    #[test]
    fn display() {
        assert_eq!(ServiceId::new("net12").to_string(), "net12");
    }
}
