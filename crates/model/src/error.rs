use std::fmt;

use archrel_expr::ExprError;

/// Errors produced while constructing or validating service models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A probability-valued input was outside `[0, 1]` or non-finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Where it appeared.
        context: String,
    },
    /// A rate, speed, or bandwidth attribute was invalid (negative,
    /// non-finite, or a zero capacity).
    InvalidAttribute {
        /// Attribute name, e.g. `"speed"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A negative demand (operations / bytes) was requested from a simple
    /// service.
    InvalidDemand {
        /// The offending value.
        value: f64,
    },
    /// Two services with the same identifier were registered.
    DuplicateService {
        /// The duplicated identifier.
        id: String,
    },
    /// A call references a service absent from the assembly.
    UnknownService {
        /// The missing identifier.
        id: String,
        /// The service whose flow contains the dangling call.
        referenced_from: String,
    },
    /// A call's actual parameters do not cover the callee's formal
    /// parameters exactly.
    ParameterMismatch {
        /// The caller service.
        caller: String,
        /// The callee service.
        callee: String,
        /// Formal parameters that received no actual expression.
        missing: Vec<String>,
        /// Actual parameters that match no formal parameter.
        extraneous: Vec<String>,
    },
    /// A flow is structurally malformed.
    MalformedFlow {
        /// The service owning the flow.
        service: String,
        /// Explanation of the defect.
        reason: String,
    },
    /// A `Shared`-dependency state does not actually share a single service
    /// through a single connector (paper §3.2 restricts sharing to that case).
    InvalidSharing {
        /// The service owning the flow.
        service: String,
        /// The offending state.
        state: String,
        /// Explanation of the defect.
        reason: String,
    },
    /// A `k`-out-of-`n` completion model with `k` outside `1..=n`.
    InvalidKOutOfN {
        /// Requested quorum.
        k: usize,
        /// Number of requests in the state.
        n: usize,
    },
    /// An expression failed to parse or evaluate.
    Expr(ExprError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} in {context}")
            }
            ModelError::InvalidAttribute { name, value } => {
                write!(f, "invalid attribute {name} = {value}")
            }
            ModelError::InvalidDemand { value } => write!(f, "invalid demand {value}"),
            ModelError::DuplicateService { id } => write!(f, "duplicate service `{id}`"),
            ModelError::UnknownService {
                id,
                referenced_from,
            } => write!(f, "unknown service `{id}` referenced from `{referenced_from}`"),
            ModelError::ParameterMismatch {
                caller,
                callee,
                missing,
                extraneous,
            } => write!(
                f,
                "parameter mismatch calling `{callee}` from `{caller}`: missing {missing:?}, extraneous {extraneous:?}"
            ),
            ModelError::MalformedFlow { service, reason } => {
                write!(f, "malformed flow in `{service}`: {reason}")
            }
            ModelError::InvalidSharing {
                service,
                state,
                reason,
            } => write!(
                f,
                "invalid sharing declaration in `{service}` state `{state}`: {reason}"
            ),
            ModelError::InvalidKOutOfN { k, n } => {
                write!(f, "k-out-of-n completion with k = {k}, n = {n}")
            }
            ModelError::Expr(e) => write!(f, "expression error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Expr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExprError> for ModelError {
    fn from(e: ExprError) -> Self {
        ModelError::Expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::ParameterMismatch {
            caller: "search".into(),
            callee: "sort".into(),
            missing: vec!["list".into()],
            extraneous: vec![],
        };
        let s = e.to_string();
        assert!(s.contains("search") && s.contains("sort") && s.contains("list"));
    }

    #[test]
    fn expr_error_converts() {
        let e: ModelError = ExprError::UnboundParameter { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
