use std::fmt;

use archrel_expr::ExprError;
use archrel_model::ModelError;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Simulation recursion exceeded [`crate::MAX_SIMULATION_DEPTH`] —
    /// almost certainly a recursive assembly (which the sampler supports
    /// only when recursion terminates with probability one and reasonable
    /// depth).
    DepthExceeded {
        /// The service at which the cap was hit.
        service: String,
    },
    /// Transition probabilities of a flow state, evaluated under the given
    /// bindings, do not form a distribution.
    BadTransitions {
        /// The service owning the flow.
        service: String,
        /// The offending state.
        state: String,
        /// Evaluated row sum.
        sum: f64,
    },
    /// Zero trials were requested.
    NoTrials,
    /// An underlying model operation failed.
    Model(ModelError),
    /// An underlying expression evaluation failed.
    Expr(ExprError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DepthExceeded { service } => {
                write!(f, "simulation depth cap exceeded at `{service}`")
            }
            SimError::BadTransitions {
                service,
                state,
                sum,
            } => write!(
                f,
                "transition probabilities of `{service}` state `{state}` sum to {sum}"
            ),
            SimError::NoTrials => write!(f, "at least one trial is required"),
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Expr(e) => write!(f, "expression error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Expr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<ExprError> for SimError {
    fn from(e: ExprError) -> Self {
        SimError::Expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::DepthExceeded {
            service: "svc".into(),
        };
        assert!(e.to_string().contains("svc"));
        let e: SimError = ModelError::InvalidDemand { value: -1.0 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
