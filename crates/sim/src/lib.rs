//! Monte Carlo validation of the analytical reliability model.
//!
//! The paper's §6 notes that prediction is only one side of reliability
//! assessment, the other being *monitoring* of the running assembly. Lacking
//! a production deployment, this crate stands in for monitoring: it executes
//! the **same stochastic model** the analytical engine solves — flow
//! traversal, per-request internal/external failures, connector failures,
//! completion models, and the shared-service coupling of §3.2 — by direct
//! sampling, and checks that the analytic prediction falls inside tight
//! confidence intervals.
//!
//! - [`simulate_invocation`]: one sampled execution of a service.
//! - [`estimate`]: an N-trial (optionally multi-threaded) reliability
//!   estimate with a Wilson 95% confidence interval.
//!
//! # Examples
//!
//! ```
//! use archrel_model::paper;
//! use archrel_sim::{estimate, SimulationOptions};
//!
//! # fn main() -> Result<(), archrel_sim::SimError> {
//! let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
//! let opts = SimulationOptions { trials: 20_000, seed: 42, threads: 2 };
//! let est = estimate(
//!     &assembly,
//!     &paper::SEARCH.into(),
//!     &paper::search_bindings(4.0, 1024.0, 1.0),
//!     &opts,
//! )?;
//! assert!(est.failure_probability < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod importance;
mod runner;
pub mod stats;

pub use engine::{simulate_invocation, MAX_SIMULATION_DEPTH};
pub use error::SimError;
pub use importance::{estimate_rare, ImportanceOptions, RareEstimate};
pub use runner::{estimate, Estimate, SimulationOptions};

/// Convenience result alias for fallible simulation operations.
pub type Result<T> = std::result::Result<T, SimError>;
