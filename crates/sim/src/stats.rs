//! Small statistics helpers for simulation estimates.

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` bounds for the underlying probability given
/// `successes` out of `trials`, at confidence level determined by the
/// standard-normal quantile `z` (1.96 for 95%).
///
/// The Wilson interval behaves well for proportions near 0 and 1 — exactly
/// where reliability estimates live.
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials` (programmer error).
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson interval of zero trials");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The 97.5% standard-normal quantile (two-sided 95% confidence).
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Sample mean of a slice (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (0.0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_contains_point_estimate() {
        let (lo, hi) = wilson_interval(80, 100, Z_95);
        assert!(lo < 0.8 && 0.8 < hi);
        assert!(lo > 0.70 && hi < 0.90);
    }

    #[test]
    fn wilson_bounds_stay_in_unit_interval() {
        let (lo, hi) = wilson_interval(0, 100, Z_95);
        assert!(lo.abs() < 1e-12 && hi < 0.1);
        let (lo, hi) = wilson_interval(100, 100, Z_95);
        assert!(lo > 0.9 && hi <= 1.0 && (1.0 - hi) < 1e-12);
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_interval(50, 100, Z_95);
        let (lo2, hi2) = wilson_interval(5000, 10_000, Z_95);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_handles_extremes_sanely() {
        // Even at 0 successes the upper bound is positive (rule-of-three).
        let (lo, hi) = wilson_interval(0, 1000, Z_95);
        assert!(lo.abs() < 1e-12);
        assert!(hi > 0.0 && hi < 0.01);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn wilson_rejects_zero_trials() {
        let _ = wilson_interval(0, 0, Z_95);
    }

    #[test]
    fn mean_and_std_dev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }
}
