//! Importance sampling for **rare-event** reliability estimation.
//!
//! Well-designed assemblies have failure probabilities of 1e-6 and below,
//! where plain Monte Carlo needs ~1e8 trials for a two-digit estimate. This
//! estimator biases every *failure draw* upward by a boost factor and
//! corrects with likelihood-ratio weights:
//!
//! - each Bernoulli failure of true probability `p` is drawn with proposal
//!   probability `p' = min(p · boost, 1/2)`;
//! - the trial weight multiplies by `p/p'` on a failure draw and
//!   `(1−p)/(1−p')` on a success draw;
//! - transition (branch) draws stay unbiased;
//! - `Pfail ≈ mean(weight · 1{trial failed})` — an unbiased estimator for
//!   any boost, recovering plain Monte Carlo at `boost = 1`.

use archrel_expr::Bindings;
use archrel_model::{Assembly, ServiceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{simulate_at_depth, Sampler};
use crate::{Result, SimError};

/// Options for the rare-event estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceOptions {
    /// Number of trials.
    pub trials: u64,
    /// RNG seed.
    pub seed: u64,
    /// Multiplier applied to every failure probability during sampling
    /// (values `>= 1`; `1.0` degenerates to plain Monte Carlo).
    pub boost: f64,
}

impl Default for ImportanceOptions {
    fn default() -> Self {
        ImportanceOptions {
            trials: 50_000,
            seed: 0x001A_7E57,
            boost: 100.0,
        }
    }
}

/// Result of an importance-sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareEstimate {
    /// Trials performed.
    pub trials: u64,
    /// Trials that ended in failure (under the biased sampling — expect far
    /// more than `trials · Pfail`).
    pub failures: u64,
    /// Unbiased estimate of the failure probability.
    pub failure_probability: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
}

impl RareEstimate {
    /// Whether a predicted value lies within `z` standard errors.
    pub fn consistent_with(&self, predicted: f64, z: f64) -> bool {
        (self.failure_probability - predicted).abs() <= z * self.std_error
    }
}

/// Proposal cap: boosted probabilities never exceed this, keeping the
/// likelihood ratios bounded.
const MAX_PROPOSAL: f64 = 0.5;

struct BoostedSampler<'r> {
    rng: &'r mut StdRng,
    boost: f64,
    weight: f64,
}

impl Sampler for BoostedSampler<'_> {
    fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    fn failure(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let proposal = (p * self.boost).min(MAX_PROPOSAL).max(p.min(MAX_PROPOSAL));
        if self.rng.gen::<f64>() < proposal {
            self.weight *= p / proposal;
            true
        } else {
            self.weight *= (1.0 - p) / (1.0 - proposal);
            false
        }
    }
}

/// Estimates `Pfail(service, env)` with failure-biased sampling.
///
/// # Errors
///
/// - [`SimError::NoTrials`] for a zero trial count or a boost below one;
/// - any simulation error from the walk.
pub fn estimate_rare(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    opts: &ImportanceOptions,
) -> Result<RareEstimate> {
    if opts.trials == 0 || !opts.boost.is_finite() || opts.boost < 1.0 {
        return Err(SimError::NoTrials);
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut failures = 0u64;
    for _ in 0..opts.trials {
        let mut sampler = BoostedSampler {
            rng: &mut rng,
            boost: opts.boost,
            weight: 1.0,
        };
        let ok = simulate_at_depth(assembly, service, env, &mut sampler, 0)?;
        let x = if ok {
            0.0
        } else {
            failures += 1;
            sampler.weight
        };
        sum += x;
        sum_sq += x * x;
    }
    let n = opts.trials as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    Ok(RareEstimate {
        trials: opts.trials,
        failures,
        failure_probability: mean,
        std_error: (var / n).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_model::{
        catalog, AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service, ServiceCall,
        StateId,
    };

    /// Series of two rare components: Pfail = 1 - (1-p)^2 ~ 2e-5.
    fn rare_assembly(p: f64) -> Assembly {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "a",
                vec![ServiceCall::new("dep1").with_param("x", Expr::num(1.0))],
            ))
            .state(FlowState::new(
                "b",
                vec![ServiceCall::new("dep2").with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", "b", Expr::one())
            .transition("b", StateId::End, Expr::one())
            .build()
            .unwrap();
        AssemblyBuilder::new()
            .service(catalog::blackbox_service("dep1", "x", p))
            .service(catalog::blackbox_service("dep2", "x", p))
            .service(Service::Composite(
                CompositeService::new("app", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn unbiased_on_rare_events() {
        let p = 1e-5;
        let assembly = rare_assembly(p);
        let analytic = 1.0 - (1.0 - p) * (1.0 - p);
        let est = estimate_rare(
            &assembly,
            &"app".into(),
            &Bindings::new(),
            &ImportanceOptions {
                trials: 40_000,
                seed: 3,
                boost: 1e4,
            },
        )
        .unwrap();
        assert!(
            est.consistent_with(analytic, 4.0),
            "estimate {} +/- {} vs analytic {analytic}",
            est.failure_probability,
            est.std_error
        );
        // The biased walk actually observes failures.
        assert!(est.failures > 1000, "only {} failures", est.failures);
    }

    #[test]
    fn beats_plain_monte_carlo_on_rare_events() {
        let p = 1e-5;
        let assembly = rare_assembly(p);
        let analytic = 1.0 - (1.0 - p) * (1.0 - p);
        let trials = 40_000u64;
        let est = estimate_rare(
            &assembly,
            &"app".into(),
            &Bindings::new(),
            &ImportanceOptions {
                trials,
                seed: 5,
                boost: 1e4,
            },
        )
        .unwrap();
        // Plain MC standard error at the same trial budget.
        let plain_se = (analytic * (1.0 - analytic) / trials as f64).sqrt();
        assert!(
            est.std_error < plain_se / 5.0,
            "IS se {} not much better than plain {plain_se}",
            est.std_error
        );
    }

    #[test]
    fn boost_of_one_is_plain_monte_carlo() {
        let assembly = rare_assembly(0.05);
        let est = estimate_rare(
            &assembly,
            &"app".into(),
            &Bindings::new(),
            &ImportanceOptions {
                trials: 30_000,
                seed: 11,
                boost: 1.0,
            },
        )
        .unwrap();
        // All failure weights are exactly one.
        let analytic = 1.0 - 0.95f64 * 0.95;
        assert!(est.consistent_with(analytic, 4.0));
        assert!(
            (est.failure_probability - est.failures as f64 / est.trials as f64).abs() < 1e-12,
            "weights should be 1 at boost 1"
        );
    }

    #[test]
    fn moderate_probabilities_still_unbiased() {
        // The proposal cap kicks in (p * boost > 0.5).
        let assembly = rare_assembly(0.1);
        let analytic = 1.0 - 0.9f64 * 0.9;
        let est = estimate_rare(
            &assembly,
            &"app".into(),
            &Bindings::new(),
            &ImportanceOptions {
                trials: 60_000,
                seed: 21,
                boost: 50.0,
            },
        )
        .unwrap();
        assert!(
            est.consistent_with(analytic, 4.0),
            "estimate {} +/- {} vs {analytic}",
            est.failure_probability,
            est.std_error
        );
    }

    #[test]
    fn invalid_options_rejected() {
        let assembly = rare_assembly(0.1);
        for opts in [
            ImportanceOptions {
                trials: 0,
                seed: 1,
                boost: 10.0,
            },
            ImportanceOptions {
                trials: 10,
                seed: 1,
                boost: 0.5,
            },
            ImportanceOptions {
                trials: 10,
                seed: 1,
                boost: f64::NAN,
            },
        ] {
            assert!(estimate_rare(&assembly, &"app".into(), &Bindings::new(), &opts).is_err());
        }
    }
}
