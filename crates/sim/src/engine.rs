//! One sampled execution of a service invocation.
//!
//! The sampler follows the paper's stochastic model literally:
//!
//! - a composite service's flow is walked from `Start`, choosing successors
//!   by the (parameter-evaluated) transition probabilities;
//! - in each state, every request samples an *internal* failure
//!   (caller-side, eq. 14) and an *external* failure — a fresh recursive
//!   execution of the connector and of the target service;
//! - under `Shared` dependency, **one external failure fails every request
//!   in the state** (no repair, §3.2); under `Independent` they are
//!   separate;
//! - the state succeeds per its completion model (AND / OR / k-out-of-n);
//!   a failed state aborts the invocation (fail-stop);
//! - reaching `End` is success.

use archrel_expr::Bindings;
use archrel_model::{Assembly, CompletionModel, DependencyModel, Service, ServiceId, StateId};
use rand::Rng;

use crate::{Result, SimError};

/// Recursion cap for nested/recursive service executions.
///
/// Kept conservative because each level is a real stack frame: realistic
/// assemblies nest a handful of levels; anything deeper is almost always a
/// recursive assembly that should be analyzed with the fixed-point engine.
pub const MAX_SIMULATION_DEPTH: usize = 256;

/// Simulates a single invocation of `service` under `env`.
///
/// Returns `true` when the invocation completes successfully.
///
/// # Errors
///
/// - [`SimError::DepthExceeded`] for runaway recursion;
/// - [`SimError::BadTransitions`] when evaluated transition probabilities do
///   not form a distribution;
/// - model / expression errors for malformed inputs.
pub fn simulate_invocation<R: Rng + ?Sized>(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    rng: &mut R,
) -> Result<bool> {
    let mut sampler = PlainSampler(rng);
    simulate_at_depth(assembly, service, env, &mut sampler, 0)
}

/// Source of randomness for the walk, factored so the importance-sampling
/// estimator can bias *failure* draws (and reweight) while leaving the
/// *transition* draws untouched.
pub(crate) trait Sampler {
    /// Uniform draw in `[0, 1)` for transition selection.
    fn uniform(&mut self) -> f64;
    /// Draws the failure event of probability `p`.
    fn failure(&mut self, p: f64) -> bool;
}

/// Unbiased sampler over any RNG.
pub(crate) struct PlainSampler<'r, R: Rng + ?Sized>(pub &'r mut R);

impl<R: Rng + ?Sized> Sampler for PlainSampler<'_, R> {
    fn uniform(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    fn failure(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.0.gen::<f64>() < p
        }
    }
}

pub(crate) fn simulate_at_depth(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    sampler: &mut dyn Sampler,
    depth: usize,
) -> Result<bool> {
    if depth >= MAX_SIMULATION_DEPTH {
        return Err(SimError::DepthExceeded {
            service: service.to_string(),
        });
    }
    match assembly.require(service)? {
        Service::Simple(simple) => {
            let demand = env.get(simple.formal_param()).ok_or_else(|| {
                SimError::Expr(archrel_expr::ExprError::UnboundParameter {
                    name: simple.formal_param().to_string(),
                })
            })?;
            let p = simple.failure_probability(demand)?.value();
            Ok(!sampler.failure(p))
        }
        Service::Composite(composite) => {
            let flow = composite.flow();
            let mut current = StateId::Start;
            loop {
                // Sample the next state.
                let mut total = 0.0;
                let mut choices: Vec<(&StateId, f64)> = Vec::new();
                for t in flow.outgoing(&current) {
                    let p = t.probability.eval(env)?;
                    if !(0.0..=1.0 + 1e-9).contains(&p) {
                        return Err(SimError::BadTransitions {
                            service: service.to_string(),
                            state: current.to_string(),
                            sum: p,
                        });
                    }
                    total += p;
                    choices.push((&t.to, p));
                }
                if (total - 1.0).abs() > 1e-9 {
                    return Err(SimError::BadTransitions {
                        service: service.to_string(),
                        state: current.to_string(),
                        sum: total,
                    });
                }
                let mut draw = sampler.uniform() * total;
                let mut next = choices
                    .last()
                    .map(|(s, _)| (*s).clone())
                    .expect("validated flows have outgoing transitions");
                for (s, p) in choices {
                    if draw < p {
                        next = s.clone();
                        break;
                    }
                    draw -= p;
                }

                if next == StateId::End {
                    return Ok(true);
                }
                // Execute the state's requests.
                let state = flow
                    .state(&next)
                    .expect("validated flows only reference declared states");
                if !execute_state(assembly, state, env, sampler, depth)? {
                    return Ok(false); // fail-stop
                }
                current = next;
            }
        }
    }
}

fn execute_state(
    assembly: &Assembly,
    state: &archrel_model::FlowState,
    env: &Bindings,
    sampler: &mut dyn Sampler,
    depth: usize,
) -> Result<bool> {
    if state.calls.is_empty() {
        return Ok(true);
    }
    // Sample each request's internal and external failure.
    let mut internal_ok = Vec::with_capacity(state.calls.len());
    let mut external_ok = Vec::with_capacity(state.calls.len());
    for call in &state.calls {
        let mut callee_env = Bindings::new();
        let mut first_demand = 0.0;
        for (i, (name, expr)) in call.actual_params.iter().enumerate() {
            let v = expr.eval(env)?;
            if i == 0 {
                first_demand = v;
            }
            callee_env.insert(name.clone(), v);
        }
        let p_int = call
            .internal_failure
            .failure_probability(first_demand)?
            .value();
        internal_ok.push(!sampler.failure(p_int));

        let target_ok = simulate_at_depth(assembly, &call.target, &callee_env, sampler, depth + 1)?;
        let connector_ok = match &call.connector {
            None => true,
            Some(binding) => {
                let mut conn_env = Bindings::new();
                for (name, expr) in &binding.actual_params {
                    conn_env.insert(name.clone(), expr.eval(env)?);
                }
                simulate_at_depth(assembly, &binding.connector, &conn_env, sampler, depth + 1)?
            }
        };
        external_ok.push(target_ok && connector_ok);
    }

    // Combine request outcomes per the dependency model.
    let request_ok: Vec<bool> = match state.dependency {
        DependencyModel::Independent => internal_ok
            .iter()
            .zip(&external_ok)
            .map(|(&i, &e)| i && e)
            .collect(),
        DependencyModel::Shared => {
            // One external failure takes down every request (§3.2).
            let any_external_failure = external_ok.iter().any(|&ok| !ok);
            if any_external_failure {
                vec![false; state.calls.len()]
            } else {
                internal_ok.clone()
            }
        }
    };

    let successes = request_ok.iter().filter(|&&ok| ok).count();
    Ok(match state.completion {
        CompletionModel::And => successes == request_ok.len(),
        CompletionModel::Or => successes >= 1,
        CompletionModel::KOutOfN { k } => successes >= k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_model::{
        catalog, AssemblyBuilder, CompositeService, FlowBuilder, FlowState, ServiceCall,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn perfect_assembly_always_succeeds() {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("dep").with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::blackbox_service("dep", "x", 0.0))
            .service(Service::Composite(
                CompositeService::new("app", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert!(
                simulate_invocation(&assembly, &"app".into(), &Bindings::new(), &mut r).unwrap()
            );
        }
    }

    #[test]
    fn certain_failure_always_fails() {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("dep").with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::blackbox_service("dep", "x", 1.0))
            .service(Service::Composite(
                CompositeService::new("app", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert!(
                !simulate_invocation(&assembly, &"app".into(), &Bindings::new(), &mut r).unwrap()
            );
        }
    }

    #[test]
    fn recursive_assembly_with_certain_recursion_hits_depth_cap() {
        let flow = FlowBuilder::new()
            .state(FlowState::new("again", vec![ServiceCall::new("svc")]))
            .transition(StateId::Start, "again", Expr::one())
            .transition("again", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(Service::Composite(
                CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let mut r = rng();
        let err =
            simulate_invocation(&assembly, &"svc".into(), &Bindings::new(), &mut r).unwrap_err();
        assert!(matches!(err, SimError::DepthExceeded { .. }));
    }

    #[test]
    fn unbound_parameter_is_reported() {
        let assembly = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 1e-9))
            .build()
            .unwrap();
        let mut r = rng();
        let err =
            simulate_invocation(&assembly, &"cpu".into(), &Bindings::new(), &mut r).unwrap_err();
        assert!(matches!(err, SimError::Expr(_)));
    }

    #[test]
    fn simple_service_sampling_matches_probability() {
        let assembly = AssemblyBuilder::new()
            .service(catalog::blackbox_service("dep", "x", 0.25))
            .build()
            .unwrap();
        let mut r = rng();
        let env = Bindings::new().with("x", 1.0);
        let trials = 40_000;
        let mut failures = 0;
        for _ in 0..trials {
            if !simulate_invocation(&assembly, &"dep".into(), &env, &mut r).unwrap() {
                failures += 1;
            }
        }
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
