//! Multi-trial (and multi-threaded) reliability estimation.

use archrel_expr::Bindings;
use archrel_model::{Assembly, ServiceId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::simulate_invocation;
use crate::stats::{wilson_interval, Z_95};
use crate::{Result, SimError};

/// Options for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationOptions {
    /// Number of independent invocation trials.
    pub trials: u64,
    /// Base seed; every run with the same seed, trial count, and thread
    /// count is reproducible.
    pub seed: u64,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            trials: 100_000,
            seed: 0xA5CE_57A7,
            threads: 4,
        }
    }
}

/// A reliability estimate with its 95% Wilson confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Trials performed.
    pub trials: u64,
    /// Trials that ended in failure.
    pub failures: u64,
    /// Point estimate of the failure probability.
    pub failure_probability: f64,
    /// Lower 95% confidence bound on the failure probability.
    pub ci_low: f64,
    /// Upper 95% confidence bound on the failure probability.
    pub ci_high: f64,
}

impl Estimate {
    /// Point estimate of the reliability.
    pub fn reliability(&self) -> f64 {
        1.0 - self.failure_probability
    }

    /// Whether a predicted failure probability falls inside the interval.
    pub fn contains(&self, predicted: f64) -> bool {
        (self.ci_low..=self.ci_high).contains(&predicted)
    }
}

/// Runs `opts.trials` independent invocations of `service` and estimates its
/// failure probability.
///
/// Trials are split across `opts.threads` workers, each with an
/// independently seeded RNG, so results are reproducible for a fixed
/// `(seed, trials, threads)` triple.
///
/// # Errors
///
/// - [`SimError::NoTrials`] when `opts.trials == 0`;
/// - any simulation error from the first failing worker.
pub fn estimate(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    opts: &SimulationOptions,
) -> Result<Estimate> {
    if opts.trials == 0 {
        return Err(SimError::NoTrials);
    }
    let threads = opts.threads.max(1).min(opts.trials as usize).max(1);
    let per_thread = opts.trials / threads as u64;
    let remainder = opts.trials % threads as u64;

    let mut failures_total = 0u64;
    let results: Vec<Result<u64>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let worker_trials = per_thread + u64::from((worker as u64) < remainder);
            let worker_seed = opts
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker as u64 + 1));
            handles.push(scope.spawn(move |_| -> Result<u64> {
                let mut rng = StdRng::seed_from_u64(worker_seed);
                let mut failures = 0u64;
                for _ in 0..worker_trials {
                    if !simulate_invocation(assembly, service, env, &mut rng)? {
                        failures += 1;
                    }
                }
                Ok(failures)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation worker panicked"))
            .collect()
    })
    .expect("crossbeam scope panicked");

    for r in results {
        failures_total += r?;
    }

    let p = failures_total as f64 / opts.trials as f64;
    let (lo, hi) = wilson_interval(failures_total, opts.trials, Z_95);
    Ok(Estimate {
        trials: opts.trials,
        failures: failures_total,
        failure_probability: p,
        ci_low: lo,
        ci_high: hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_core::Evaluator;
    use archrel_model::paper;

    #[test]
    fn zero_trials_rejected() {
        let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
        let opts = SimulationOptions {
            trials: 0,
            ..SimulationOptions::default()
        };
        assert!(matches!(
            estimate(
                &assembly,
                &paper::SEARCH.into(),
                &paper::search_bindings(4.0, 64.0, 1.0),
                &opts
            ),
            Err(SimError::NoTrials)
        ));
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
        let env = paper::search_bindings(4.0, 1024.0, 1.0);
        let opts = SimulationOptions {
            trials: 5000,
            seed: 99,
            threads: 3,
        };
        let a = estimate(&assembly, &paper::SEARCH.into(), &env, &opts).unwrap();
        let b = estimate(&assembly, &paper::SEARCH.into(), &env, &opts).unwrap();
        assert_eq!(a.failures, b.failures);
    }

    /// The headline validation: the analytic prediction falls inside the
    /// simulator's confidence interval on the paper's own example. The
    /// default parameters give Pfail ~ 1e-2 at list = 65536 with an inflated
    /// γ, so a moderate trial count resolves it.
    #[test]
    fn analytic_prediction_inside_simulation_ci() {
        let params = paper::PaperParams::default()
            .with_gamma(0.1)
            .with_phi_sort1(5e-6);
        let env = paper::search_bindings(4.0, 8192.0, 1.0);
        for assembly in [
            paper::local_assembly(&params).unwrap(),
            paper::remote_assembly(&params).unwrap(),
        ] {
            let predicted = Evaluator::new(&assembly)
                .failure_probability(&paper::SEARCH.into(), &env)
                .unwrap()
                .value();
            let est = estimate(
                &assembly,
                &paper::SEARCH.into(),
                &env,
                &SimulationOptions {
                    trials: 60_000,
                    seed: 7,
                    threads: 4,
                },
            )
            .unwrap();
            assert!(
                est.contains(predicted),
                "predicted {predicted} outside [{}, {}]",
                est.ci_low,
                est.ci_high
            );
        }
    }

    #[test]
    fn estimate_accessors() {
        let e = Estimate {
            trials: 100,
            failures: 10,
            failure_probability: 0.1,
            ci_low: 0.05,
            ci_high: 0.18,
        };
        assert_eq!(e.reliability(), 0.9);
        assert!(e.contains(0.1));
        assert!(!e.contains(0.5));
    }

    #[test]
    fn single_thread_and_many_threads_agree_statistically() {
        let assembly =
            paper::local_assembly(&paper::PaperParams::default().with_phi_sort1(5e-6)).unwrap();
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        let one = estimate(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &SimulationOptions {
                trials: 30_000,
                seed: 1,
                threads: 1,
            },
        )
        .unwrap();
        let many = estimate(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &SimulationOptions {
                trials: 30_000,
                seed: 1,
                threads: 8,
            },
        )
        .unwrap();
        // Different partitioning, same distribution: intervals overlap.
        assert!(one.ci_low <= many.ci_high && many.ci_low <= one.ci_high);
    }
}
