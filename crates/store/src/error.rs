use std::fmt;

use archrel_markov::MarkovError;

use crate::format::FORMAT_VERSION;

/// Typed rejection of an artifact archive: every way a file can fail to be
/// a trustworthy compiled plan, from plain I/O trouble to a hostile byte
/// stream. A [`StoreError`] is always a *soft* failure for the evaluation
/// pipeline — callers fall back to fresh compilation — but never silent:
/// the store counts each rejection.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed (including not-found).
    Io(std::io::Error),
    /// The file is too short to hold the structure it claims.
    Truncated {
        /// Bytes needed for the next parse step.
        needed: usize,
        /// Bytes actually present.
        len: usize,
    },
    /// The file does not start with the archive magic.
    BadMagic,
    /// The archive was written by a different format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The header's recorded file length does not match the actual file —
    /// a truncated or padded archive.
    LengthMismatch {
        /// Length recorded in the header.
        header: u64,
        /// Actual file length.
        actual: u64,
    },
    /// The archive was produced by an incompatible build (pointer width,
    /// endianness, or layout revision).
    BuildMismatch {
        /// Build key found in the header.
        found: u64,
    },
    /// The whole-file checksum does not verify: the body was corrupted.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the file.
        computed: u64,
    },
    /// The archive kind tag is not one this reader understands.
    BadKind {
        /// Kind tag found in the header.
        found: u32,
    },
    /// The archive is keyed to a different structure than requested (e.g.
    /// a plan file renamed to another fingerprint).
    KeyMismatch {
        /// Key the caller asked for.
        expected: u64,
        /// Key recorded in the archive.
        found: u64,
    },
    /// A payload section's framing is invalid: out of bounds, misaligned,
    /// or inconsistent with the header metadata.
    BadSection {
        /// Zero-based section index.
        section: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The payload framed correctly but failed the plan's semantic
    /// validation (bounds, permutations, finiteness — see
    /// [`archrel_markov::SolvePlan::from_parts`]).
    InvalidPlan(MarkovError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact I/O failure: {e}"),
            StoreError::Truncated { needed, len } => {
                write!(f, "artifact truncated: need {needed} bytes, have {len}")
            }
            StoreError::BadMagic => write!(f, "not an archrel artifact (bad magic)"),
            StoreError::BadVersion { found } => write!(
                f,
                "artifact format version {found} (this build reads {FORMAT_VERSION})"
            ),
            StoreError::LengthMismatch { header, actual } => write!(
                f,
                "artifact length mismatch: header says {header} bytes, file has {actual}"
            ),
            StoreError::BuildMismatch { found } => {
                write!(f, "artifact written by an incompatible build ({found:#x})")
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            StoreError::BadKind { found } => write!(f, "unknown artifact kind {found}"),
            StoreError::KeyMismatch { expected, found } => {
                write!(f, "artifact keyed to {found:#x}, expected {expected:#x}")
            }
            StoreError::BadSection { section, reason } => {
                write!(f, "artifact section {section} invalid: {reason}")
            }
            StoreError::InvalidPlan(e) => write!(f, "archived plan failed validation: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::InvalidPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<MarkovError> for StoreError {
    fn from(e: MarkovError) -> StoreError {
        StoreError::InvalidPlan(e)
    }
}
