//! The crate's entire `unsafe` surface: a read-only file mapping and the
//! validated byte-to-typed-slice views handed to `archrel-markov` as
//! [`SliceBacking`] implementations.
//!
//! Soundness rests on three invariants, each established here:
//!
//! 1. **Stability** — a [`Mapping`]'s bytes never move or change for its
//!    lifetime. `mmap` is `MAP_PRIVATE`/`PROT_READ`, and writers publish
//!    archives by atomic rename, never by mutating a published file in
//!    place, so the mapped inode's contents are frozen.
//! 2. **Bounds** — a [`MappedSection`] checks `byte_off + len * size_of::<T>()`
//!    against the backing length at construction.
//! 3. **Alignment** — the actual base pointer plus offset is checked against
//!    `align_of::<T>()` at construction (mmap bases are page-aligned, but
//!    the check also keeps the non-unix buffer fallback honest).
//!
//! `T` is restricted to [`Pod`] types (`u32`, `u64`, `f64`) for which every
//! bit pattern is a valid value, so a hostile byte stream can at worst decode
//! to wrong *numbers* — which the plan-level validation then rejects — never
//! to undefined behavior.

use std::fs::File;
use std::marker::PhantomData;
use std::sync::Arc;

use archrel_markov::SliceBacking;

use crate::error::StoreError;

/// Marker for types where every bit pattern is a valid value.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding, no invalid bit patterns,
/// and no pointers.
pub(crate) unsafe trait Pod: Copy + Send + Sync + 'static {}

// SAFETY: plain scalars — every bit pattern is valid, no padding.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}
// SAFETY: as above (NaN payloads are valid f64 values; finiteness is a
// semantic check done by plan validation, not a safety condition).
unsafe impl Pod for f64 {}

/// Byte storage an archive was opened from: a file mapping on unix, an
/// 8-byte-aligned heap buffer elsewhere (and for crafted in-memory tests).
pub(crate) type Backing = Arc<dyn AsRef<[u8]> + Send + Sync>;

/// A validated, typed window into a [`Backing`].
pub(crate) struct MappedSection<T> {
    backing: Backing,
    byte_off: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Pod> MappedSection<T> {
    /// Validates bounds and alignment, returning a zero-copy view.
    pub(crate) fn new(
        backing: Backing,
        byte_off: usize,
        len: usize,
        section: usize,
    ) -> Result<MappedSection<T>, StoreError> {
        let bytes: &[u8] = (*backing).as_ref();
        let byte_len = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or(StoreError::BadSection {
                section,
                reason: "length overflows",
            })?;
        let end = byte_off
            .checked_add(byte_len)
            .ok_or(StoreError::BadSection {
                section,
                reason: "offset overflows",
            })?;
        if end > bytes.len() {
            return Err(StoreError::BadSection {
                section,
                reason: "payload out of bounds",
            });
        }
        if !(bytes.as_ptr() as usize + byte_off).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(StoreError::BadSection {
                section,
                reason: "payload misaligned",
            });
        }
        Ok(MappedSection {
            backing,
            byte_off,
            len,
            _marker: PhantomData,
        })
    }
}

impl<T: Pod> SliceBacking<T> for MappedSection<T> {
    fn as_slice(&self) -> &[T] {
        let bytes: &[u8] = (*self.backing).as_ref();
        // SAFETY: bounds and alignment were validated at construction
        // against this same backing, whose bytes are stable for its
        // lifetime (module invariant 1); T is Pod, so any bit pattern in
        // the window is a valid value.
        unsafe {
            std::slice::from_raw_parts(bytes.as_ptr().add(self.byte_off) as *const T, self.len)
        }
    }
}

/// An 8-byte-aligned owned byte buffer — the read fallback when mapping is
/// unavailable, and the carrier for crafted archives in tests.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into fresh 8-aligned storage.
    pub fn copy_from(bytes: &[u8]) -> AlignedBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: u64 -> u8 reinterpretation of an owned, live buffer;
        // every byte is initialized (zeroed above, then overwritten).
        let dst = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
        };
        dst[..bytes.len()].copy_from_slice(bytes);
        AlignedBytes {
            words,
            len: bytes.len(),
        }
    }
}

impl AsRef<[u8]> for AlignedBytes {
    fn as_ref(&self) -> &[u8] {
        // SAFETY: u64 -> u8 reinterpretation of owned storage; `len` never
        // exceeds `words.len() * 8` by construction.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// A read-only, privately mapped view of an entire file.
#[cfg(unix)]
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    // Bind the already-linked C library's mapping entry points directly:
    // the workspace builds offline with no external crates, so the usual
    // `libc` shim is hand-rolled here for exactly the two symbols needed.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// Linux `MAP_POPULATE`: prefault the whole mapping in the `mmap`
    /// call itself. The checksum pass reads every page immediately
    /// anyway, and one syscall-time populate is far cheaper than a minor
    /// fault per 4 KiB page — cold-start load time is the store's
    /// product. Other unixes take the fault path (flag 0 is a no-op).
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: i32 = 0x8000;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_POPULATE: i32 = 0;
}

#[cfg(unix)]
impl Mapping {
    /// Maps `len` bytes of `file` read-only.
    pub fn map(file: &File, len: usize) -> std::io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "cannot map an empty file",
            ));
        }
        // SAFETY: a fresh private read-only mapping of a file descriptor we
        // own; the kernel picks the address. Failure is reported as
        // MAP_FAILED (-1), checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE | sys::MAP_POPULATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
        })
    }
}

// SAFETY: the mapping is read-only and its address range is owned by this
// value until Drop; concurrent reads from multiple threads are safe.
#[cfg(unix)]
unsafe impl Send for Mapping {}
// SAFETY: as above.
#[cfg(unix)]
unsafe impl Sync for Mapping {}

#[cfg(unix)]
impl AsRef<[u8]> for Mapping {
    fn as_ref(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping held until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact range returned by mmap in `map`.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

/// Opens `file` as stable bytes: an mmap on unix, an aligned read
/// elsewhere.
pub(crate) fn map_file(file: &File, len: usize) -> std::io::Result<Backing> {
    #[cfg(unix)]
    {
        Ok(Arc::new(Mapping::map(file, len)?))
    }
    #[cfg(not(unix))]
    {
        use std::io::Read;
        let mut bytes = Vec::with_capacity(len);
        let mut f = file;
        f.read_to_end(&mut bytes)?;
        Ok(Arc::new(AlignedBytes::copy_from(&bytes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_round_trip_and_alignment() {
        let data: Vec<u8> = (0..37).collect();
        let a = AlignedBytes::copy_from(&data);
        assert_eq!(a.as_ref(), &data[..]);
        assert_eq!(a.as_ref().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn mapped_section_validates_bounds_and_alignment() {
        let backing: Backing = Arc::new(AlignedBytes::copy_from(&[0u8; 32]));
        assert!(MappedSection::<u64>::new(Arc::clone(&backing), 0, 4, 0).is_ok());
        assert!(matches!(
            MappedSection::<u64>::new(Arc::clone(&backing), 0, 5, 0),
            Err(StoreError::BadSection { .. })
        ));
        assert!(matches!(
            MappedSection::<u64>::new(Arc::clone(&backing), 4, 1, 0),
            Err(StoreError::BadSection { .. })
        ));
        assert!(matches!(
            MappedSection::<u32>::new(Arc::clone(&backing), usize::MAX - 2, 1, 0),
            Err(StoreError::BadSection { .. })
        ));
    }

    #[cfg(unix)]
    #[test]
    fn mapping_reads_file_contents() {
        let path = std::env::temp_dir().join(format!("archrel-map-test-{}", std::process::id()));
        std::fs::write(&path, b"hello mapping").unwrap();
        let file = File::open(&path).unwrap();
        let map = Mapping::map(&file, 13).unwrap();
        assert_eq!(map.as_ref(), b"hello mapping");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
