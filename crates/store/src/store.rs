//! The filesystem tier: a directory of immutable archives shared by any
//! number of processes, written once via atomic rename and thereafter
//! mapped read-only.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use archrel_markov::SolvePlan;

use crate::error::StoreError;
use crate::format::{decode_bundle, decode_plan, encode_bundle, encode_plan, FORMAT_VERSION};
use crate::mapped::map_file;

/// Environment variable naming the shared artifact directory. Empty means
/// unset (the store stays off).
pub const ENV_ARTIFACT_DIR: &str = "ARCHREL_ARTIFACT_DIR";
/// Environment variable selecting the [`ArtifactMode`]; defaults to
/// `readwrite` when [`ENV_ARTIFACT_DIR`] is set.
pub const ENV_ARTIFACT_MODE: &str = "ARCHREL_ARTIFACT_MODE";

/// How the evaluation pipeline uses the artifact directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactMode {
    /// The store is inert: no reads, no writes.
    Off,
    /// Load archived artifacts, never write new ones — the safe mode for
    /// many processes sharing one warmed directory.
    Read,
    /// Load archived artifacts and publish freshly compiled ones.
    ReadWrite,
}

impl ArtifactMode {
    /// Parses `off` / `read` / `readwrite` (case-sensitive, matching the
    /// other `ARCHREL_*` variables).
    pub fn parse(s: &str) -> Option<ArtifactMode> {
        match s {
            "off" => Some(ArtifactMode::Off),
            "read" => Some(ArtifactMode::Read),
            "readwrite" => Some(ArtifactMode::ReadWrite),
            _ => None,
        }
    }

    /// Whether this mode loads archives.
    pub fn reads(self) -> bool {
        !matches!(self, ArtifactMode::Off)
    }

    /// Whether this mode publishes archives.
    pub fn writes(self) -> bool {
        matches!(self, ArtifactMode::ReadWrite)
    }
}

/// Counter snapshot of one store's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Archives loaded and validated successfully.
    pub hits: u64,
    /// Lookups that found no archive on disk.
    pub misses: u64,
    /// Archives present but rejected by validation (corrupt, wrong
    /// version, wrong build, hostile framing, …).
    pub validate_rejects: u64,
    /// Archives published by this store.
    pub writes: u64,
}

/// A shared directory of compiled-plan and program-bundle archives.
///
/// All methods take `&self`; the store is safe to share across threads
/// (`Arc<ArtifactStore>`) and across processes pointed at the same
/// directory. Publication goes through a process-unique temp file followed
/// by [`fs::rename`], so concurrent readers only ever observe complete
/// archives — never a torn write.
pub struct ArtifactStore {
    dir: PathBuf,
    mode: ArtifactMode,
    hits: AtomicU64,
    misses: AtomicU64,
    validate_rejects: AtomicU64,
    writes: AtomicU64,
    /// Bundles already loaded or published this run, to skip repeat disk
    /// traffic for the same assembly digest.
    bundles: Mutex<HashMap<u64, Vec<u64>>>,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ArtifactStore {
    /// Opens (and in a writing mode, creates) the artifact directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a writing mode cannot create the directory.
    pub fn open(dir: impl Into<PathBuf>, mode: ArtifactMode) -> Result<ArtifactStore, StoreError> {
        let dir = dir.into();
        if mode.writes() {
            fs::create_dir_all(&dir)?;
        }
        Ok(ArtifactStore {
            dir,
            mode,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            validate_rejects: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bundles: Mutex::new(HashMap::new()),
        })
    }

    /// Builds a store from `ARCHREL_ARTIFACT_DIR` / `ARCHREL_ARTIFACT_MODE`,
    /// or `None` when the directory variable is unset or empty.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized mode value, or when a non-`off` mode is
    /// requested without a directory — misconfiguration is a hard error,
    /// matching the other `ARCHREL_*` variables.
    pub fn from_env() -> Option<Arc<ArtifactStore>> {
        let dir = std::env::var(ENV_ARTIFACT_DIR)
            .ok()
            .filter(|v| !v.is_empty());
        let mode = std::env::var(ENV_ARTIFACT_MODE)
            .ok()
            .filter(|v| !v.is_empty())
            .map(|v| {
                ArtifactMode::parse(&v).unwrap_or_else(|| {
                    panic!("{ENV_ARTIFACT_MODE} must be off, read, or readwrite, got {v:?}")
                })
            });
        match (dir, mode) {
            (Some(dir), mode) => {
                let mode = mode.unwrap_or(ArtifactMode::ReadWrite);
                if mode == ArtifactMode::Off {
                    return None;
                }
                let store = ArtifactStore::open(&dir, mode)
                    .unwrap_or_else(|e| panic!("{ENV_ARTIFACT_DIR}={dir:?} cannot be opened: {e}"));
                Some(Arc::new(store))
            }
            (None, Some(mode)) if mode != ArtifactMode::Off => {
                panic!("{ENV_ARTIFACT_MODE} requires {ENV_ARTIFACT_DIR} to be set")
            }
            (None, _) => None,
        }
    }

    /// Read-only boot path for long-running daemons: opens an *existing*
    /// artifact directory in [`ArtifactMode::Read`], so archived plans
    /// satisfy cache misses but nothing a client uploads can ever be
    /// published back. Returns `None` when the directory does not exist —
    /// a daemon booting against an empty store simply runs cold.
    pub fn open_read_only(dir: impl Into<PathBuf>) -> Option<Arc<ArtifactStore>> {
        let dir = dir.into();
        if !dir.is_dir() {
            return None;
        }
        ArtifactStore::open(dir, ArtifactMode::Read)
            .ok()
            .map(Arc::new)
    }

    /// The directory this store reads from and publishes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured mode.
    pub fn mode(&self) -> ArtifactMode {
        self.mode
    }

    /// Path of the archive for a plan fingerprint. Public so corruption
    /// tests can damage archives in place.
    pub fn plan_path(&self, fingerprint: u64) -> PathBuf {
        self.dir
            .join(format!("plan-{fingerprint:016x}.v{FORMAT_VERSION}.arst"))
    }

    /// Path of the archive for a program-bundle digest.
    pub fn bundle_path(&self, digest: u64) -> PathBuf {
        self.dir
            .join(format!("bundle-{digest:016x}.v{FORMAT_VERSION}.arst"))
    }

    fn open_backing(&self, path: &Path) -> Result<crate::mapped::Backing, StoreError> {
        let file = fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| StoreError::BadSection {
            section: 0,
            reason: "file too large for this platform",
        })?;
        Ok(map_file(&file, len)?)
    }

    /// Loads and fully validates the archived plan for `fingerprint`.
    ///
    /// This is the typed entry point used by tests; the evaluation pipeline
    /// goes through [`ArtifactStore::load_plan`], which folds errors into
    /// counters.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] (not-found included) or any validation variant.
    pub fn read_plan(&self, fingerprint: u64) -> Result<SolvePlan, StoreError> {
        let backing = self.open_backing(&self.plan_path(fingerprint))?;
        decode_plan(backing, fingerprint)
    }

    /// Counter-folding load: `Some(plan)` on a validated hit, `None` on
    /// miss or rejection (the caller falls back to fresh compilation).
    pub fn load_plan(&self, fingerprint: u64) -> Option<SolvePlan> {
        if !self.mode.reads() {
            return None;
        }
        match self.read_plan(fingerprint) {
            Ok(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.validate_rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn publish(&self, path: &Path, bytes: &[u8]) -> Result<bool, StoreError> {
        if path.exists() {
            return Ok(false);
        }
        // The temp-name counter is process-global, not per-store: two
        // stores opened on the same directory in one process must never
        // share a temp file, or concurrent publications could tear.
        static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        match fs::rename(&tmp, path) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }

    /// Publishes a compiled plan; returns `false` when the mode does not
    /// write or an archive for this fingerprint already exists.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the temp write or rename fails.
    pub fn store_plan(&self, plan: &SolvePlan) -> Result<bool, StoreError> {
        if !self.mode.writes() {
            return Ok(false);
        }
        self.publish(&self.plan_path(plan.fingerprint()), &encode_plan(plan))
    }

    /// Loads the plan fingerprints pinned by the program bundle `digest`,
    /// or `None` on miss/rejection. Results are memoized per digest.
    pub fn load_bundle(&self, digest: u64) -> Option<Vec<u64>> {
        if !self.mode.reads() {
            return None;
        }
        if let Some(fps) = self.bundles.lock().unwrap().get(&digest) {
            return Some(fps.clone());
        }
        let result = self
            .open_backing(&self.bundle_path(digest))
            .and_then(|b| decode_bundle(b, digest));
        match result {
            Ok(fps) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bundles.lock().unwrap().insert(digest, fps.clone());
                Some(fps)
            }
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.validate_rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a program bundle; deduplicated per digest per store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the temp write or rename fails.
    pub fn store_bundle(&self, digest: u64, fingerprints: &[u64]) -> Result<bool, StoreError> {
        if !self.mode.writes() {
            return Ok(false);
        }
        {
            let mut seen = self.bundles.lock().unwrap();
            if seen.contains_key(&digest) {
                return Ok(false);
            }
            seen.insert(digest, fingerprints.to_vec());
        }
        self.publish(
            &self.bundle_path(digest),
            &encode_bundle(digest, fingerprints),
        )
    }

    /// Current counter values.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            validate_rejects: self.validate_rejects.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_markov::DtmcBuilder;
    use std::sync::atomic::AtomicU32;

    static TEMP_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_store_dir() -> PathBuf {
        std::env::temp_dir().join(format!(
            "archrel-store-unit-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_plan() -> (SolvePlan, Vec<f64>) {
        let chain = DtmcBuilder::new()
            .transition("s", "a", 0.7)
            .transition("s", "fail", 0.3)
            .transition("a", "end", 0.95)
            .transition("a", "fail", 0.05)
            .build()
            .unwrap();
        let plan = SolvePlan::compile(&chain, &"s", &"end").unwrap();
        let params = plan.parameters(&chain).unwrap();
        (plan, params)
    }

    #[test]
    fn store_round_trip_counts_miss_write_hit() {
        let dir = temp_store_dir();
        let store = ArtifactStore::open(&dir, ArtifactMode::ReadWrite).unwrap();
        let (plan, params) = sample_plan();

        assert!(store.load_plan(plan.fingerprint()).is_none());
        assert!(store.store_plan(&plan).unwrap());
        // Second publish is a no-op: the archive already exists.
        assert!(!store.store_plan(&plan).unwrap());
        let loaded = store.load_plan(plan.fingerprint()).unwrap();
        assert!(loaded.is_zero_copy());
        assert_eq!(
            loaded.evaluate(&params).unwrap().to_bits(),
            plan.evaluate(&params).unwrap().to_bits()
        );
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 1,
                validate_rejects: 0,
                writes: 1,
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_mode_never_writes() {
        let dir = temp_store_dir();
        fs::create_dir_all(&dir).unwrap();
        let store = ArtifactStore::open(&dir, ArtifactMode::Read).unwrap();
        let (plan, _) = sample_plan();
        assert!(!store.store_plan(&plan).unwrap());
        assert!(!store.plan_path(plan.fingerprint()).exists());
        assert!(!store.store_bundle(1, &[2, 3]).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_archive_is_rejected_and_counted() {
        let dir = temp_store_dir();
        let store = ArtifactStore::open(&dir, ArtifactMode::ReadWrite).unwrap();
        let (plan, _) = sample_plan();
        store.store_plan(&plan).unwrap();

        let path = store.plan_path(plan.fingerprint());
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load_plan(plan.fingerprint()).is_none());
        assert_eq!(store.stats().validate_rejects, 1);
        assert!(matches!(
            store.read_plan(plan.fingerprint()),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bundles_round_trip_and_memoize() {
        let dir = temp_store_dir();
        let store = ArtifactStore::open(&dir, ArtifactMode::ReadWrite).unwrap();
        let fps = vec![10u64, 20, 30];
        assert!(store.load_bundle(42).is_none());
        assert!(store.store_bundle(42, &fps).unwrap());
        assert!(!store.store_bundle(42, &fps).unwrap());
        assert_eq!(store.load_bundle(42).unwrap(), fps);

        // A second store over the same directory reads it from disk.
        let other = ArtifactStore::open(&dir, ArtifactMode::Read).unwrap();
        assert_eq!(other.load_bundle(42).unwrap(), fps);
        assert_eq!(other.stats().hits, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(ArtifactMode::parse("off"), Some(ArtifactMode::Off));
        assert_eq!(ArtifactMode::parse("read"), Some(ArtifactMode::Read));
        assert_eq!(
            ArtifactMode::parse("readwrite"),
            Some(ArtifactMode::ReadWrite)
        );
        assert_eq!(ArtifactMode::parse("ReadWrite"), None);
        assert!(!ArtifactMode::Off.reads());
        assert!(ArtifactMode::Read.reads() && !ArtifactMode::Read.writes());
        assert!(ArtifactMode::ReadWrite.writes());
    }
}
