//! The on-disk artifact layout: relative-offset sections behind a
//! checksummed header, in the spirit of rkyv's archived collections but
//! hand-rolled against the offline compat constraints.
//!
//! ```text
//! offset  field
//! ------  -----------------------------------------------------------
//!  0      magic            [u8; 8] = b"ARCHRELS"
//!  8      format_version   u32 (= 1)
//! 12      kind             u32 (1 = solve plan, 2 = program bundle)
//! 16      key              u64 (plan: structure fingerprint;
//!                               bundle: assembly digest)
//! 24      build_key        u64 (format version ⊕ pointer width ⊕
//!                               endianness — rejects cross-build reads)
//! 32      file_len         u64 (total bytes; pins truncation)
//! 40      checksum         u64 (FNV-1a 64 of the whole file with this
//!                               field zeroed)
//! 48      meta             [u64; 6] (kind-specific scalars)
//! 96      section table    n × { byte_off u64, item_len u64 }
//!  …      payload sections, each 8-byte aligned, in table order
//! ```
//!
//! All integers are little-endian. A *plan* archive has six meta scalars
//! `[plan_kind, n_states, from_pos, slot_count, nt, n_terms]` and seven
//! sections — acyclic (`plan_kind` 0): `t_idx, pos, r_slot, self_slot,
//! term_off, term_slot, term_pos`, all `u32`; cyclic (`plan_kind` 1):
//! `t_idx, role_tag, role_row, role_col` (`u32`), `baseline, factors`
//! (`f64`), `perm` (`u32`). A *bundle* archive has meta `[count, 0…]` and
//! one `u64` section of plan fingerprints.
//!
//! Validation order on open is deliberate: magic and version before the
//! checksum (so a wrong-version file reads as [`StoreError::BadVersion`],
//! not a checksum failure), the checksum before any section framing (so a
//! bit flip anywhere reads as [`StoreError::ChecksumMismatch`] rather than
//! whatever framing damage it caused), and the plan-level semantic
//! validation ([`archrel_markov::SolvePlan::from_parts`]) last.

use std::sync::Arc;

use archrel_markov::{PlanBody, PlanParts, Section, SolvePlan};

use crate::error::StoreError;
use crate::mapped::{Backing, MappedSection};

/// Version of the archive layout; bumped on any incompatible change.
pub const FORMAT_VERSION: u32 = 1;

pub(crate) const MAGIC: [u8; 8] = *b"ARCHRELS";
pub(crate) const KIND_PLAN: u32 = 1;
pub(crate) const KIND_BUNDLE: u32 = 2;

const CHECKSUM_OFF: usize = 40;
const HEADER_LEN: usize = 48;
const META_LEN: usize = 6;
const TABLE_OFF: usize = HEADER_LEN + META_LEN * 8;
const PLAN_SECTIONS: usize = 7;
const BUNDLE_SECTIONS: usize = 1;

const PLAN_ACYCLIC: u64 = 0;
const PLAN_CYCLIC: u64 = 1;

/// FNV-1a 64-bit hash — the archive checksum and the assembly digest
/// primitive. Exposed so corruption tests can craft archives with valid
/// checksums but hostile payloads.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The archive checksum: a word-wise, 4-lane FNV-1a-64 variant over the
/// file with the checksum field itself zeroed.
///
/// Each 8-byte little-endian word feeds one of four independent FNV
/// chains (`h = (h ^ word) * prime`), round-robin; a zero-padded tail
/// word and the file length close the digest. Splitting the serial
/// multiply chain across four lanes overlaps the multiplies, which is
/// what keeps cold-start validation of a multi-hundred-kilobyte archive
/// in the microsecond range — load time is the product this store sells.
/// Corruption detection is unchanged in kind: any flipped or truncated
/// word perturbs its lane, and the final mix binds all lanes plus the
/// length. The checksum offset (40) and header length (48) are both
/// word-aligned, so zeroing the checksum field never straddles a word.
pub fn archive_checksum(file: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const LANES: usize = 8;
    let mut lanes = [0xcbf2_9ce4_8422_2325u64; LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = lane.rotate_left(8 * i as u32);
    }
    let word = |chunk: &[u8]| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));

    // Header words first (6 of them, word 5 — the checksum field itself —
    // hashed as zero so the digest is independent of its own field); any
    // shorter prefix is digested byte-padded like a tail.
    if file.len() >= HEADER_LEN {
        for (i, chunk) in file[..CHECKSUM_OFF].chunks_exact(8).enumerate() {
            lanes[i] = (lanes[i] ^ word(chunk)).wrapping_mul(PRIME);
        }
        lanes[CHECKSUM_OFF / 8] = lanes[CHECKSUM_OFF / 8].wrapping_mul(PRIME);

        // Payload stream, 64 bytes per round, one word per lane: the
        // eight multiply chains overlap, which is what keeps validating a
        // multi-hundred-kilobyte archive in the microsecond range — load
        // time is the product this store sells. Detection is unchanged in
        // kind: every flipped or truncated word perturbs its lane, and
        // the final mix binds all lanes plus the file length.
        let mut rounds = file[HEADER_LEN..].chunks_exact(8 * LANES);
        for round in &mut rounds {
            for (lane, chunk) in lanes.iter_mut().zip(round.chunks_exact(8)) {
                *lane = (*lane ^ word(chunk)).wrapping_mul(PRIME);
            }
        }
        let tail = rounds.remainder();
        let mut words = tail.chunks_exact(8);
        for (i, chunk) in (&mut words).enumerate() {
            lanes[i] = (lanes[i] ^ word(chunk)).wrapping_mul(PRIME);
        }
        let rest = words.remainder();
        if !rest.is_empty() {
            let mut padded = [0u8; 8];
            padded[..rest.len()].copy_from_slice(rest);
            let i = tail.len() / 8;
            lanes[i] = (lanes[i] ^ u64::from_le_bytes(padded)).wrapping_mul(PRIME);
        }
    } else {
        for (i, b) in file.iter().enumerate() {
            let lane = &mut lanes[i & (LANES - 1)];
            *lane = (*lane ^ u64::from(*b)).wrapping_mul(PRIME);
        }
    }

    let mut h = file.len() as u64;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    h
}

/// Build compatibility key: same-format archives are only shared between
/// builds with identical layout-relevant properties.
pub(crate) fn build_key() -> u64 {
    fnv1a64(&[
        FORMAT_VERSION as u8,
        std::mem::size_of::<usize>() as u8,
        cfg!(target_endian = "little") as u8,
    ])
}

/// One payload section staged for writing.
enum Payload<'a> {
    U32(&'a [u32]),
    F64(&'a [f64]),
    U64(&'a [u64]),
}

impl Payload<'_> {
    fn item_len(&self) -> usize {
        match self {
            Payload::U32(s) => s.len(),
            Payload::F64(s) => s.len(),
            Payload::U64(s) => s.len(),
        }
    }

    fn byte_len(&self) -> usize {
        match self {
            Payload::U32(s) => s.len() * 4,
            Payload::F64(s) => s.len() * 8,
            Payload::U64(s) => s.len() * 8,
        }
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        match self {
            Payload::U32(s) => {
                for v in *s {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::F64(s) => {
                for v in *s {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::U64(s) => {
                for v in *s {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
}

fn assemble(kind: u32, key: u64, meta: [u64; META_LEN], payloads: &[Payload<'_>]) -> Vec<u8> {
    // Lay out the sections first: each starts 8-aligned after the table.
    let mut offsets = Vec::with_capacity(payloads.len());
    let mut off = TABLE_OFF + payloads.len() * 16;
    for p in payloads {
        offsets.push(off as u64);
        off += p.byte_len().next_multiple_of(8);
    }
    let file_len = off;

    let mut out = Vec::with_capacity(file_len);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&build_key().to_le_bytes());
    out.extend_from_slice(&(file_len as u64).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below
    for m in meta {
        out.extend_from_slice(&m.to_le_bytes());
    }
    for (p, o) in payloads.iter().zip(&offsets) {
        out.extend_from_slice(&o.to_le_bytes());
        out.extend_from_slice(&(p.item_len() as u64).to_le_bytes());
    }
    for p in payloads {
        p.write_to(&mut out);
        while out.len() % 8 != 0 {
            out.push(0);
        }
    }
    debug_assert_eq!(out.len(), file_len);
    let checksum = archive_checksum(&out);
    out[CHECKSUM_OFF..CHECKSUM_OFF + 8].copy_from_slice(&checksum.to_le_bytes());
    out
}

/// Serializes a compiled plan into archive bytes.
pub fn encode_plan(plan: &SolvePlan) -> Vec<u8> {
    let parts = plan.to_parts();
    match &parts.body {
        PlanBody::Acyclic {
            t_idx,
            pos,
            r_slot,
            self_slot,
            term_off,
            term_slot,
            term_pos,
        } => assemble(
            KIND_PLAN,
            parts.fingerprint,
            [
                PLAN_ACYCLIC,
                parts.n_states as u64,
                parts.from_pos as u64,
                parts.slot_count as u64,
                t_idx.len() as u64,
                term_slot.len() as u64,
            ],
            &[
                Payload::U32(t_idx.as_slice()),
                Payload::U32(pos.as_slice()),
                Payload::U32(r_slot.as_slice()),
                Payload::U32(self_slot.as_slice()),
                Payload::U32(term_off.as_slice()),
                Payload::U32(term_slot.as_slice()),
                Payload::U32(term_pos.as_slice()),
            ],
        ),
        PlanBody::Cyclic {
            t_idx,
            role_tag,
            role_row,
            role_col,
            baseline,
            factors,
            perm,
        } => assemble(
            KIND_PLAN,
            parts.fingerprint,
            [
                PLAN_CYCLIC,
                parts.n_states as u64,
                parts.from_pos as u64,
                parts.slot_count as u64,
                t_idx.len() as u64,
                0,
            ],
            &[
                Payload::U32(t_idx.as_slice()),
                Payload::U32(role_tag.as_slice()),
                Payload::U32(role_row.as_slice()),
                Payload::U32(role_col.as_slice()),
                Payload::F64(baseline.as_slice()),
                Payload::F64(factors.as_slice()),
                Payload::U32(perm.as_slice()),
            ],
        ),
    }
}

/// Serializes a program bundle (the set of plan fingerprints a compiled
/// assembly program pins) into archive bytes.
pub fn encode_bundle(digest: u64, fingerprints: &[u64]) -> Vec<u8> {
    assemble(
        KIND_BUNDLE,
        digest,
        [fingerprints.len() as u64, 0, 0, 0, 0, 0],
        &[Payload::U64(fingerprints)],
    )
}

/// A validated archive header plus its section table, over stable bytes.
struct Archive {
    backing: Backing,
    key: u64,
    meta: [u64; META_LEN],
    /// `(byte_off, item_len)` per section, framing not yet validated.
    sections: Vec<(u64, u64)>,
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte window"))
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte window"))
}

fn open_archive(
    backing: Backing,
    expected_kind: u32,
    expected_key: u64,
) -> Result<Archive, StoreError> {
    let bytes: &[u8] = (*backing).as_ref();
    if bytes.len() < TABLE_OFF {
        return Err(StoreError::Truncated {
            needed: TABLE_OFF,
            len: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = read_u32(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    let file_len = read_u64(bytes, 32);
    if file_len != bytes.len() as u64 {
        return Err(StoreError::LengthMismatch {
            header: file_len,
            actual: bytes.len() as u64,
        });
    }
    let found_build = read_u64(bytes, 24);
    if found_build != build_key() {
        return Err(StoreError::BuildMismatch { found: found_build });
    }
    let stored = read_u64(bytes, CHECKSUM_OFF);
    let computed = archive_checksum(bytes);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let kind = read_u32(bytes, 12);
    if kind != expected_kind {
        return Err(StoreError::BadKind { found: kind });
    }
    let key = read_u64(bytes, 16);
    if key != expected_key {
        return Err(StoreError::KeyMismatch {
            expected: expected_key,
            found: key,
        });
    }
    let n_sections = match kind {
        KIND_PLAN => PLAN_SECTIONS,
        _ => BUNDLE_SECTIONS,
    };
    let table_end = TABLE_OFF + n_sections * 16;
    if bytes.len() < table_end {
        return Err(StoreError::Truncated {
            needed: table_end,
            len: bytes.len(),
        });
    }
    let mut meta = [0u64; META_LEN];
    for (i, m) in meta.iter_mut().enumerate() {
        *m = read_u64(bytes, HEADER_LEN + i * 8);
    }
    let sections = (0..n_sections)
        .map(|i| {
            (
                read_u64(bytes, TABLE_OFF + i * 16),
                read_u64(bytes, TABLE_OFF + i * 16 + 8),
            )
        })
        .collect();
    Ok(Archive {
        backing,
        key,
        meta,
        sections,
    })
}

impl Archive {
    fn section<T: crate::mapped::Pod>(&self, idx: usize) -> Result<Section<T>, StoreError> {
        let (off, len) = self.sections[idx];
        let off = usize::try_from(off).map_err(|_| StoreError::BadSection {
            section: idx,
            reason: "offset overflows",
        })?;
        let len = usize::try_from(len).map_err(|_| StoreError::BadSection {
            section: idx,
            reason: "length overflows",
        })?;
        Ok(Section::Mapped(Arc::new(MappedSection::<T>::new(
            Arc::clone(&self.backing),
            off,
            len,
            idx,
        )?)))
    }

    fn meta_usize(&self, idx: usize) -> Result<usize, StoreError> {
        usize::try_from(self.meta[idx]).map_err(|_| StoreError::BadSection {
            section: idx,
            reason: "metadata scalar overflows",
        })
    }
}

/// Opens archive bytes as a validated, zero-copy [`SolvePlan`] keyed to
/// `expected_fingerprint`.
///
/// # Errors
///
/// Any [`StoreError`] variant except `Io` — see the module docs for the
/// check order.
pub fn decode_plan(backing: Backing, expected_fingerprint: u64) -> Result<SolvePlan, StoreError> {
    let archive = open_archive(backing, KIND_PLAN, expected_fingerprint)?;
    let n_states = archive.meta_usize(1)?;
    let from_pos = archive.meta_usize(2)?;
    let slot_count = archive.meta_usize(3)?;
    let nt = archive.meta_usize(4)?;
    let n_terms = archive.meta_usize(5)?;
    let body = match archive.meta[0] {
        PLAN_ACYCLIC => {
            let body = PlanBody::Acyclic {
                t_idx: archive.section::<u32>(0)?,
                pos: archive.section::<u32>(1)?,
                r_slot: archive.section::<u32>(2)?,
                self_slot: archive.section::<u32>(3)?,
                term_off: archive.section::<u32>(4)?,
                term_slot: archive.section::<u32>(5)?,
                term_pos: archive.section::<u32>(6)?,
            };
            // Cross-check the table against the header metadata so the two
            // can never disagree silently.
            if let PlanBody::Acyclic {
                t_idx,
                pos,
                term_off,
                term_slot,
                ..
            } = &body
            {
                if t_idx.len() != nt
                    || pos.len() != nt
                    || term_off.len() != nt + 1
                    || term_slot.len() != n_terms
                {
                    return Err(StoreError::BadSection {
                        section: 0,
                        reason: "section lengths disagree with metadata",
                    });
                }
            }
            body
        }
        PLAN_CYCLIC => {
            let body = PlanBody::Cyclic {
                t_idx: archive.section::<u32>(0)?,
                role_tag: archive.section::<u32>(1)?,
                role_row: archive.section::<u32>(2)?,
                role_col: archive.section::<u32>(3)?,
                baseline: archive.section::<f64>(4)?,
                factors: archive.section::<f64>(5)?,
                perm: archive.section::<u32>(6)?,
            };
            if let PlanBody::Cyclic {
                t_idx, role_tag, ..
            } = &body
            {
                if t_idx.len() != nt || role_tag.len() != slot_count {
                    return Err(StoreError::BadSection {
                        section: 0,
                        reason: "section lengths disagree with metadata",
                    });
                }
            }
            body
        }
        _ => {
            return Err(StoreError::BadSection {
                section: 0,
                reason: "unknown plan kind",
            })
        }
    };
    let plan = SolvePlan::from_parts(PlanParts {
        fingerprint: archive.key,
        n_states,
        from_pos,
        slot_count,
        body,
    })?;
    Ok(plan)
}

/// Opens archive bytes as a program bundle keyed to `expected_digest`,
/// returning the pinned plan fingerprints.
///
/// # Errors
///
/// Same contract as [`decode_plan`].
pub fn decode_bundle(backing: Backing, expected_digest: u64) -> Result<Vec<u64>, StoreError> {
    let archive = open_archive(backing, KIND_BUNDLE, expected_digest)?;
    let count = archive.meta_usize(0)?;
    let section = archive.section::<u64>(0)?;
    if section.len() != count {
        return Err(StoreError::BadSection {
            section: 0,
            reason: "section lengths disagree with metadata",
        });
    }
    Ok(section.as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::AlignedBytes;
    use archrel_markov::{DtmcBuilder, SolvePlan};

    fn backing(bytes: &[u8]) -> Backing {
        Arc::new(AlignedBytes::copy_from(bytes))
    }

    fn sample_plan() -> (SolvePlan, Vec<f64>) {
        let chain = DtmcBuilder::new()
            .transition("s", "a", 0.6)
            .transition("s", "b", 0.4)
            .transition("a", "end", 0.8)
            .transition("a", "fail", 0.2)
            .transition("b", "end", 0.9)
            .transition("b", "fail", 0.1)
            .build()
            .unwrap();
        let plan = SolvePlan::compile(&chain, &"s", &"end").unwrap();
        let params = plan.parameters(&chain).unwrap();
        (plan, params)
    }

    #[test]
    fn plan_bytes_round_trip_and_are_zero_copy() {
        let (plan, params) = sample_plan();
        let bytes = encode_plan(&plan);
        let decoded = decode_plan(backing(&bytes), plan.fingerprint()).unwrap();
        assert!(decoded.is_zero_copy());
        assert_eq!(decoded.fingerprint(), plan.fingerprint());
        assert_eq!(
            decoded.evaluate(&params).unwrap().to_bits(),
            plan.evaluate(&params).unwrap().to_bits()
        );
    }

    #[test]
    fn bundle_bytes_round_trip() {
        let fps = [1u64, 99, u64::MAX];
        let bytes = encode_bundle(7, &fps);
        assert_eq!(decode_bundle(backing(&bytes), 7).unwrap(), fps);
        assert!(matches!(
            decode_bundle(backing(&bytes), 8),
            Err(StoreError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn header_checks_fire_in_order() {
        let (plan, _) = sample_plan();
        let fp = plan.fingerprint();
        let good = encode_plan(&plan);

        assert!(matches!(
            decode_plan(backing(&good[..30]), fp),
            Err(StoreError::Truncated { .. })
        ));

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_plan(backing(&bad), fp),
            Err(StoreError::BadMagic)
        ));

        // Wrong version, checksum freshly recomputed: must surface as
        // BadVersion, not ChecksumMismatch.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        let c = archive_checksum(&bad);
        bad[40..48].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(
            decode_plan(backing(&bad), fp),
            Err(StoreError::BadVersion { found: 99 })
        ));

        // Truncated body: the header length pin catches it.
        assert!(matches!(
            decode_plan(backing(&good[..good.len() - 8]), fp),
            Err(StoreError::LengthMismatch { .. })
        ));

        // A flipped payload bit is a checksum mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 3;
        bad[last] ^= 0x10;
        assert!(matches!(
            decode_plan(backing(&bad), fp),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Wrong key (fingerprint-mismatch fixture).
        assert!(matches!(
            decode_plan(backing(&good), fp ^ 1),
            Err(StoreError::KeyMismatch { .. })
        ));

        // Hostile but checksum-valid framing: out-of-bounds section offset.
        let mut bad = good.clone();
        bad[TABLE_OFF..TABLE_OFF + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let c = archive_checksum(&bad);
        bad[40..48].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(
            decode_plan(backing(&bad), fp),
            Err(StoreError::BadSection { .. })
        ));
    }
}
