//! Zero-copy persistent artifact store for compiled solve plans and
//! assembly-program bundles.
//!
//! Compiling a [`SolvePlan`](archrel_markov::SolvePlan) costs a topological
//! sort for acyclic structures and a dense `O(n³)` LU factorization for
//! cyclic ones. Both depend only on the chain's *structure* — exactly what
//! the plan's fingerprint hashes — so the result can be archived once and
//! reopened by any later process working on the same structure. This crate
//! provides that archive tier:
//!
//! - [`format`]: a relative-offset, checksummed binary layout whose payload
//!   sections are consumed in place — loading performs zero deserialization
//!   copies of the tape or factor slabs (the bytes are mapped and handed to
//!   `archrel-markov` as [`Section::Mapped`](archrel_markov::Section) views).
//! - [`ArtifactStore`]: a shared directory of such archives with
//!   atomic-rename publication, per-counter traffic stats, and a
//!   fall-back-to-fresh-compilation contract: a missing, corrupt, or
//!   hostile archive is a typed [`StoreError`], never a panic, never
//!   undefined behavior, and never a silently wrong number.
//!
//! Trust boundary: an archive is validated *structurally* here (magic,
//! version, build key, whole-file checksum, section framing, alignment)
//! and *semantically* by
//! [`SolvePlan::from_parts`](archrel_markov::SolvePlan::from_parts)
//! (bounds, permutations, finiteness, stochasticity) before a single
//! archived value feeds an evaluation.

#![forbid(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod error;
pub mod format;
mod mapped;
mod store;

pub use error::StoreError;
pub use format::{archive_checksum, decode_plan, encode_plan, fnv1a64, FORMAT_VERSION};
pub use mapped::AlignedBytes;
pub use store::{ArtifactMode, ArtifactStore, StoreStats, ENV_ARTIFACT_DIR, ENV_ARTIFACT_MODE};
