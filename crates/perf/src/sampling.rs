//! Path-sampling validation of the analytic latency prediction.
//!
//! Within one flow the per-state times are deterministic given the bindings;
//! the only randomness is the branch structure. Sampling paths and averaging
//! their accumulated times therefore estimates exactly the quantity
//! [`crate::LatencyEvaluator::expected_latency`] computes analytically — an
//! independent check on the visit-count algebra (fundamental matrix).

use archrel_expr::Bindings;
use archrel_model::{Assembly, Service, ServiceId, StateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{LatencyEvaluator, PerfConfig, PerfError, Result};

/// Estimates the mean end-to-end latency of `service` by sampling `trials`
/// flow walks. Returns `(mean, standard_error)`.
///
/// # Errors
///
/// Same failure modes as the analytic evaluator, plus
/// [`PerfError::InvalidLatency`] when `trials == 0`.
pub fn sample_mean_latency(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    config: PerfConfig,
    trials: u64,
    seed: u64,
) -> Result<(f64, f64)> {
    if trials == 0 {
        return Err(PerfError::InvalidLatency {
            value: 0.0,
            context: "trials".to_string(),
        });
    }
    let evaluator = LatencyEvaluator::new(assembly, config);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..trials {
        let t = sample_walk(assembly, &evaluator, service, env, &mut rng, 0)?;
        sum += t;
        sum_sq += t * t;
    }
    let n = trials as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    let stderr = (var / n).sqrt();
    Ok((mean, stderr))
}

const MAX_DEPTH: usize = 256;

fn sample_walk(
    assembly: &Assembly,
    evaluator: &LatencyEvaluator<'_>,
    service: &ServiceId,
    env: &Bindings,
    rng: &mut StdRng,
    depth: usize,
) -> Result<f64> {
    if depth >= MAX_DEPTH {
        return Err(PerfError::RecursiveAssembly {
            cycle: vec![service.to_string()],
        });
    }
    match assembly.require(service)? {
        Service::Simple(_) => evaluator.expected_latency(service, env),
        Service::Composite(composite) => {
            let flow = composite.flow();
            let mut total = 0.0;
            let mut current = StateId::Start;
            loop {
                // Sample the successor.
                let mut choices: Vec<(&StateId, f64)> = Vec::new();
                let mut mass = 0.0;
                for t in flow.outgoing(&current) {
                    let p = t.probability.eval(env)?;
                    mass += p;
                    choices.push((&t.to, p));
                }
                let mut draw = rng.gen::<f64>() * mass;
                let mut next = choices
                    .last()
                    .map(|(s, _)| (*s).clone())
                    .expect("validated flows emit from every non-End state");
                for (s, p) in choices {
                    if draw < p {
                        next = s.clone();
                        break;
                    }
                    draw -= p;
                }
                if next == StateId::End {
                    return Ok(total);
                }
                let state = flow.state(&next).expect("declared state");
                // Per-state time is deterministic: reuse the analytic
                // composition (recursing into composite callees samples
                // nothing new for the same reason).
                let mut stack = vec![service.clone()];
                total += evaluator_state_time(evaluator, composite.id(), state, env, &mut stack)?;
                current = next;
            }
        }
    }
}

// Thin internal shim: `state_time` is crate-private on the evaluator.
fn evaluator_state_time(
    evaluator: &LatencyEvaluator<'_>,
    owner: &ServiceId,
    state: &archrel_model::FlowState,
    env: &Bindings,
    stack: &mut Vec<ServiceId>,
) -> Result<f64> {
    evaluator.state_time_internal(owner, state, env, stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    #[test]
    fn sampled_mean_matches_analytic_expectation() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let analytic = LatencyEvaluator::new(&assembly, PerfConfig::default())
            .expected_latency(&paper::SEARCH.into(), &env)
            .unwrap();
        let (mean, stderr) = sample_mean_latency(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            PerfConfig::default(),
            20_000,
            42,
        )
        .unwrap();
        assert!(
            (mean - analytic).abs() < 4.0 * stderr.max(1e-12),
            "sampled {mean} vs analytic {analytic} (stderr {stderr})"
        );
    }

    #[test]
    fn loop_heavy_flow_sampled_correctly() {
        use archrel_expr::Expr;
        use archrel_model::{
            catalog, AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service,
            ServiceCall,
        };
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "retry",
                vec![ServiceCall::new("cpu").with_param(catalog::CPU_PARAM, Expr::num(1e9))],
            ))
            .transition(StateId::Start, "retry", Expr::one())
            .transition("retry", "retry", Expr::num(0.75))
            .transition("retry", StateId::End, Expr::num(0.25))
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 0.0))
            .service(Service::Composite(
                CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        // Geometric visits with success 0.25: expectation 4 seconds.
        let (mean, stderr) = sample_mean_latency(
            &assembly,
            &"svc".into(),
            &Bindings::new(),
            PerfConfig::default(),
            30_000,
            9,
        )
        .unwrap();
        assert!((mean - 4.0).abs() < 4.0 * stderr, "mean {mean}");
    }

    #[test]
    fn zero_trials_rejected() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        assert!(sample_mean_latency(
            &assembly,
            &paper::SEARCH.into(),
            &paper::search_bindings(4.0, 64.0, 1.0),
            PerfConfig::default(),
            0,
            1,
        )
        .is_err());
    }
}
