//! Multi-objective service selection: the reliability × latency Pareto
//! frontier.
//!
//! Single-objective selection ([`archrel_core::selection`]) answers "which
//! assembly is most reliable"; real SOC selection trades reliability against
//! response time (§6's performance remark). This module evaluates every
//! candidate combination on **both** axes and returns the non-dominated
//! frontier the architect actually chooses from.

use archrel_core::selection::SelectionProblem;
use archrel_core::{CoreError, Evaluator};
use archrel_model::AssemblyBuilder;

use crate::{LatencyEvaluator, PerfConfig, Result};

/// One evaluated candidate combination with both QoS coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct QosPoint {
    /// Chosen candidate index per slot.
    pub choices: Vec<usize>,
    /// Predicted failure probability of the target service.
    pub failure_probability: f64,
    /// Predicted expected latency of the target service.
    pub latency: f64,
    /// Whether the point is Pareto-optimal within the evaluated set.
    pub on_frontier: bool,
}

impl QosPoint {
    /// `true` when `self` dominates `other` (no worse on both axes,
    /// strictly better on at least one).
    pub fn dominates(&self, other: &QosPoint) -> bool {
        self.failure_probability <= other.failure_probability
            && self.latency <= other.latency
            && (self.failure_probability < other.failure_probability
                || self.latency < other.latency)
    }
}

/// Evaluates all combinations of `problem` on both axes and marks the
/// Pareto frontier. Results are sorted by ascending failure probability;
/// combinations whose assembly fails validation are skipped (as in
/// single-objective selection).
///
/// # Errors
///
/// - [`CoreError::SelectionSpaceTooLarge`] (wrapped) when the combination
///   count exceeds the problem's cap;
/// - evaluation errors for combinations that validate but fail to evaluate.
pub fn qos_frontier(problem: &SelectionProblem, perf_config: &PerfConfig) -> Result<Vec<QosPoint>> {
    let combinations: u128 = problem
        .slots
        .iter()
        .map(|s| s.candidates.len() as u128)
        .product();
    if combinations > problem.max_combinations {
        return Err(CoreError::SelectionSpaceTooLarge {
            combinations,
            cap: problem.max_combinations,
        }
        .into());
    }
    if problem.slots.iter().any(|s| s.candidates.is_empty()) {
        return Ok(Vec::new());
    }

    let mut points: Vec<QosPoint> = Vec::new();
    let mut choices = vec![0usize; problem.slots.len()];
    'outer: loop {
        // Build this combination.
        let mut builder = AssemblyBuilder::new().services(problem.fixed.iter().cloned());
        for (slot, &choice) in problem.slots.iter().zip(&choices) {
            builder = builder.service(slot.candidates[choice].clone());
        }
        if let Ok(assembly) = builder.build() {
            let failure_probability = Evaluator::new(&assembly)
                .failure_probability(&problem.target, &problem.bindings)?
                .value();
            let latency = LatencyEvaluator::new(&assembly, perf_config.clone())
                .expected_latency(&problem.target, &problem.bindings)?;
            points.push(QosPoint {
                choices: choices.clone(),
                failure_probability,
                latency,
                on_frontier: false,
            });
        }
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == problem.slots.len() {
                break 'outer;
            }
            choices[pos] += 1;
            if choices[pos] < problem.slots[pos].candidates.len() {
                break;
            }
            choices[pos] = 0;
            pos += 1;
        }
    }

    // Mark the frontier.
    let snapshot = points.clone();
    for p in &mut points {
        p.on_frontier = !snapshot.iter().any(|q| q.dominates(p));
    }
    points.sort_by(|a, b| {
        a.failure_probability
            .partial_cmp(&b.failure_probability)
            .expect("probabilities are finite")
    });
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;
    use archrel_core::selection::Slot;
    use archrel_expr::{Bindings, Expr};
    use archrel_model::{
        catalog, CompositeService, FailureModel, FlowBuilder, FlowState, Service, ServiceCall,
        SimpleService, StateId,
    };

    fn app() -> Service {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("dep").with_param("x", Expr::num(1000.0))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        Service::Composite(CompositeService::new("app", vec![], flow).unwrap())
    }

    /// A candidate with an exponential law: reliability and latency both
    /// derive from (rate, capacity), giving a natural trade-off.
    fn candidate(rate: f64, capacity: f64) -> Service {
        Service::Simple(SimpleService::new(
            "dep",
            "x",
            FailureModel::ExponentialRate { rate, capacity },
        ))
    }

    #[test]
    fn frontier_keeps_non_dominated_points() {
        // Three candidates: fast+flaky, slow+solid, and one dominated.
        let problem = SelectionProblem::new(
            vec![app()],
            vec![Slot::new(
                "dep",
                vec![
                    candidate(1e-3, 1e6), // fast, flaky (Pfail ~ 1e-6, T = 1e-3)
                    candidate(1e-6, 1e4), // slow, solid (Pfail ~ 1e-7, T = 0.1)
                    candidate(1e-3, 1e4), // slow AND flaky: dominated
                ],
            )],
            "app",
            Bindings::new(),
        );
        let points = qos_frontier(&problem, &PerfConfig::default()).unwrap();
        assert_eq!(points.len(), 3);
        let frontier: Vec<&QosPoint> = points.iter().filter(|p| p.on_frontier).collect();
        assert_eq!(frontier.len(), 2);
        assert!(
            frontier.iter().all(|p| p.choices[0] != 2),
            "dominated point"
        );
        // Sorted by failure probability ascending.
        for w in points.windows(2) {
            assert!(w[0].failure_probability <= w[1].failure_probability);
        }
    }

    #[test]
    fn single_candidate_is_trivially_on_frontier() {
        let problem = SelectionProblem::new(
            vec![app()],
            vec![Slot::new("dep", vec![candidate(1e-4, 1e5)])],
            "app",
            Bindings::new(),
        );
        let points = qos_frontier(&problem, &PerfConfig::default()).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].on_frontier);
    }

    #[test]
    fn latency_overrides_shift_the_frontier() {
        // Same reliabilities; latency only via override: the config decides
        // who dominates.
        let problem = SelectionProblem::new(
            vec![app()],
            vec![Slot::new(
                "dep",
                vec![
                    catalog::blackbox_service("dep", "x", 0.01),
                    catalog::blackbox_service("dep", "x", 0.02),
                ],
            )],
            "app",
            Bindings::new(),
        );
        // Without overrides both have zero latency; the 0.02 candidate is
        // dominated.
        let points = qos_frontier(&problem, &PerfConfig::default()).unwrap();
        let flaky = points.iter().find(|p| p.choices == [1]).unwrap();
        assert!(!flaky.on_frontier);
        // Give the reliable candidate a (virtual) latency cost: now neither
        // dominates... except overrides key on service id, which both share;
        // instead make the reliable one slower via a per-combination check
        // is impossible — so assert the dominated case stays dominated even
        // with a uniform latency override.
        let cfg = PerfConfig::default().with_latency("dep", LatencyModel::Constant { time: 0.5 });
        let points = qos_frontier(&problem, &cfg).unwrap();
        let flaky = points.iter().find(|p| p.choices == [1]).unwrap();
        assert!(
            !flaky.on_frontier,
            "equal latency cannot rescue worse reliability"
        );
    }

    #[test]
    fn dominance_relation() {
        let a = QosPoint {
            choices: vec![],
            failure_probability: 0.1,
            latency: 1.0,
            on_frontier: false,
        };
        let b = QosPoint {
            choices: vec![],
            failure_probability: 0.2,
            latency: 1.0,
            on_frontier: false,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a point never dominates itself");
    }

    #[test]
    fn space_cap_is_enforced() {
        let mut problem = SelectionProblem::new(
            vec![app()],
            vec![Slot::new(
                "dep",
                (0..10).map(|_| candidate(1e-4, 1e5)).collect(),
            )],
            "app",
            Bindings::new(),
        );
        problem.max_combinations = 5;
        assert!(qos_frontier(&problem, &PerfConfig::default()).is_err());
    }
}
