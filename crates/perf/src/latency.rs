use archrel_model::FailureModel;

use crate::{PerfError, Result};

/// Published latency law of a simple service, as a function of its abstract
/// demand parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// `time = demand / capacity` — the natural law for the paper's CPU
    /// (capacity = speed `s`) and network (capacity = bandwidth `b`)
    /// resources, using the same attributes their failure laws use.
    Throughput {
        /// Work units served per time unit (must be positive).
        capacity: f64,
    },
    /// A demand-independent constant service time.
    Constant {
        /// Time units per invocation.
        time: f64,
    },
    /// Instantaneous (the pure-modeling connectors).
    Zero,
}

impl LatencyModel {
    /// Validates the model's attributes.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidLatency`] for non-finite or non-positive
    /// capacities / negative constants.
    pub fn validate(&self) -> Result<()> {
        match *self {
            LatencyModel::Throughput { capacity } => {
                if !capacity.is_finite() || capacity <= 0.0 {
                    return Err(PerfError::InvalidLatency {
                        value: capacity,
                        context: "throughput capacity".to_string(),
                    });
                }
                Ok(())
            }
            LatencyModel::Constant { time } => {
                if !time.is_finite() || time < 0.0 {
                    return Err(PerfError::InvalidLatency {
                        value: time,
                        context: "constant latency".to_string(),
                    });
                }
                Ok(())
            }
            LatencyModel::Zero => Ok(()),
        }
    }

    /// Service time for `demand` work units.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidLatency`] for invalid attributes or
    /// negative/non-finite demand.
    pub fn latency(&self, demand: f64) -> Result<f64> {
        self.validate()?;
        if !demand.is_finite() || demand < 0.0 {
            return Err(PerfError::InvalidLatency {
                value: demand,
                context: "demand".to_string(),
            });
        }
        Ok(match *self {
            LatencyModel::Throughput { capacity } => demand / capacity,
            LatencyModel::Constant { time } => time,
            LatencyModel::Zero => 0.0,
        })
    }

    /// The default latency law implied by a failure law: exponential-rate
    /// resources expose their capacity (`time = demand / capacity`);
    /// everything else defaults to instantaneous and can be overridden
    /// through [`crate::PerfConfig`].
    pub fn from_failure_model(model: &FailureModel) -> LatencyModel {
        match *model {
            FailureModel::ExponentialRate { capacity, .. } => LatencyModel::Throughput { capacity },
            FailureModel::Perfect
            | FailureModel::Constant { .. }
            | FailureModel::PerUnit { .. } => LatencyModel::Zero,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_law() {
        let m = LatencyModel::Throughput { capacity: 1e9 };
        assert_eq!(m.latency(2e9).unwrap(), 2.0);
        assert_eq!(m.latency(0.0).unwrap(), 0.0);
    }

    #[test]
    fn constant_and_zero() {
        assert_eq!(
            LatencyModel::Constant { time: 0.5 }.latency(1e12).unwrap(),
            0.5
        );
        assert_eq!(LatencyModel::Zero.latency(1e12).unwrap(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(LatencyModel::Throughput { capacity: 0.0 }
            .validate()
            .is_err());
        assert!(LatencyModel::Constant { time: -1.0 }.validate().is_err());
        assert!(LatencyModel::Throughput { capacity: 1.0 }
            .latency(-1.0)
            .is_err());
    }

    #[test]
    fn derived_from_failure_models() {
        let m = LatencyModel::from_failure_model(&FailureModel::ExponentialRate {
            rate: 1e-9,
            capacity: 2e9,
        });
        assert_eq!(m, LatencyModel::Throughput { capacity: 2e9 });
        assert_eq!(
            LatencyModel::from_failure_model(&FailureModel::Perfect),
            LatencyModel::Zero
        );
        assert_eq!(
            LatencyModel::from_failure_model(&FailureModel::Constant { probability: 0.1 }),
            LatencyModel::Zero
        );
    }
}
