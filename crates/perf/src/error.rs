use std::fmt;

use archrel_core::CoreError;
use archrel_expr::ExprError;
use archrel_markov::MarkovError;
use archrel_model::ModelError;

/// Errors produced by the performance engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PerfError {
    /// A latency attribute was invalid (negative or non-finite).
    InvalidLatency {
        /// Offending value.
        value: f64,
        /// Where it appeared.
        context: String,
    },
    /// Latency evaluation hit a recursive assembly (a fixed-point latency
    /// semantics is not defined; restructure or bound the recursion).
    RecursiveAssembly {
        /// Services on the detected cycle.
        cycle: Vec<String>,
    },
    /// An underlying model operation failed.
    Model(ModelError),
    /// An underlying Markov operation failed.
    Markov(MarkovError),
    /// An underlying expression evaluation failed.
    Expr(ExprError),
    /// An underlying reliability-engine operation failed (failure-aware
    /// latency reuses the reliability engine).
    Core(CoreError),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::InvalidLatency { value, context } => {
                write!(f, "invalid latency {value} in {context}")
            }
            PerfError::RecursiveAssembly { cycle } => {
                write!(f, "recursive assembly: cycle {}", cycle.join(" -> "))
            }
            PerfError::Model(e) => write!(f, "model error: {e}"),
            PerfError::Markov(e) => write!(f, "markov error: {e}"),
            PerfError::Expr(e) => write!(f, "expression error: {e}"),
            PerfError::Core(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for PerfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerfError::Model(e) => Some(e),
            PerfError::Markov(e) => Some(e),
            PerfError::Expr(e) => Some(e),
            PerfError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for PerfError {
    fn from(e: ModelError) -> Self {
        PerfError::Model(e)
    }
}

impl From<MarkovError> for PerfError {
    fn from(e: MarkovError) -> Self {
        PerfError::Markov(e)
    }
}

impl From<ExprError> for PerfError {
    fn from(e: ExprError) -> Self {
        PerfError::Expr(e)
    }
}

impl From<CoreError> for PerfError {
    fn from(e: CoreError) -> Self {
        PerfError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PerfError::InvalidLatency {
            value: -1.0,
            context: "cpu".into(),
        };
        assert!(e.to_string().contains("cpu"));
        let e: PerfError = ModelError::InvalidDemand { value: -1.0 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PerfError>();
    }
}
