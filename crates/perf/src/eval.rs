//! The compositional latency evaluator.

use std::collections::BTreeMap;

use archrel_core::augmented_chain;
use archrel_expr::Bindings;
use archrel_markov::{AbsorbingAnalysis, DtmcBuilder};
use archrel_model::{
    Assembly, CompositeService, Probability, Service, ServiceCall, ServiceId, StateId,
};

use crate::{LatencyModel, PerfError, Result};

/// How the request times within one flow state combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeComposition {
    /// Requests execute one after another: state time = Σ request times.
    /// The right default for the paper's flows (e.g. the RPC connector's
    /// marshal → transmit → unmarshal legs).
    #[default]
    Sequential,
    /// Requests execute concurrently: state time = max request time
    /// (exact here because per-request times are deterministic given the
    /// demands).
    Parallel,
}

/// Configuration of the latency evaluator.
#[derive(Debug, Clone, Default)]
pub struct PerfConfig {
    /// Latency-law overrides per simple service; services not listed derive
    /// their law from their failure model
    /// ([`LatencyModel::from_failure_model`]).
    pub latency_overrides: BTreeMap<ServiceId, LatencyModel>,
    /// Per-state composition overrides, keyed by `(service, state)`.
    pub composition_overrides: BTreeMap<(ServiceId, StateId), TimeComposition>,
    /// Composition used when no override matches.
    pub default_composition: TimeComposition,
}

impl PerfConfig {
    /// Builder-style latency override.
    #[must_use]
    pub fn with_latency(mut self, service: impl Into<ServiceId>, model: LatencyModel) -> Self {
        self.latency_overrides.insert(service.into(), model);
        self
    }

    /// Builder-style composition override.
    #[must_use]
    pub fn with_composition(
        mut self,
        service: impl Into<ServiceId>,
        state: impl Into<StateId>,
        composition: TimeComposition,
    ) -> Self {
        self.composition_overrides
            .insert((service.into(), state.into()), composition);
        self
    }
}

/// The compositional expected-latency engine (mirror image of
/// [`archrel_core::Evaluator`]).
#[derive(Debug)]
pub struct LatencyEvaluator<'a> {
    assembly: &'a Assembly,
    config: PerfConfig,
}

impl<'a> LatencyEvaluator<'a> {
    /// Creates an evaluator over an assembly.
    pub fn new(assembly: &'a Assembly, config: PerfConfig) -> Self {
        LatencyEvaluator { assembly, config }
    }

    /// The assembly under evaluation.
    pub fn assembly(&self) -> &'a Assembly {
        self.assembly
    }

    /// Expected end-to-end latency of one invocation of `service` under
    /// `env`, over the failure-free usage profile:
    /// `E[T] = Σ_i E[visits to i] · E[time in i]`.
    ///
    /// # Errors
    ///
    /// - [`PerfError::RecursiveAssembly`] for service-call cycles;
    /// - model / expression / Markov errors for malformed inputs.
    pub fn expected_latency(&self, service: &ServiceId, env: &Bindings) -> Result<f64> {
        let mut stack = Vec::new();
        self.latency_rec(service, env, &mut stack)
    }

    fn latency_rec(
        &self,
        service: &ServiceId,
        env: &Bindings,
        stack: &mut Vec<ServiceId>,
    ) -> Result<f64> {
        if stack.contains(service) {
            let mut cycle: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            cycle.push(service.to_string());
            return Err(PerfError::RecursiveAssembly { cycle });
        }
        match self.assembly.require(service)? {
            Service::Simple(simple) => {
                let demand = env.get(simple.formal_param()).ok_or_else(|| {
                    PerfError::Expr(archrel_expr::ExprError::UnboundParameter {
                        name: simple.formal_param().to_string(),
                    })
                })?;
                let law = self
                    .config
                    .latency_overrides
                    .get(service)
                    .copied()
                    .unwrap_or_else(|| LatencyModel::from_failure_model(simple.model()));
                law.latency(demand)
            }
            Service::Composite(composite) => {
                stack.push(service.clone());
                let result = self.composite_latency(composite, env, stack);
                stack.pop();
                result
            }
        }
    }

    fn composite_latency(
        &self,
        composite: &CompositeService,
        env: &Bindings,
        stack: &mut Vec<ServiceId>,
    ) -> Result<f64> {
        // Per-state expected times.
        let mut times: BTreeMap<StateId, f64> = BTreeMap::new();
        for state in composite.flow().states() {
            let t = self.state_time(composite.id(), state, env, stack)?;
            times.insert(state.id.clone(), t);
        }
        // Expected visits from the flow chain (End absorbing, no failures).
        let visits = flow_visit_counts(composite, env)?;
        let mut total = 0.0;
        for (state, t) in &times {
            total += visits.get(state).copied().unwrap_or(0.0) * t;
        }
        Ok(total)
    }

    /// Crate-internal entry point used by the sampling validator.
    pub(crate) fn state_time_internal(
        &self,
        owner: &ServiceId,
        state: &archrel_model::FlowState,
        env: &Bindings,
        stack: &mut Vec<ServiceId>,
    ) -> Result<f64> {
        self.state_time(owner, state, env, stack)
    }

    fn state_time(
        &self,
        owner: &ServiceId,
        state: &archrel_model::FlowState,
        env: &Bindings,
        stack: &mut Vec<ServiceId>,
    ) -> Result<f64> {
        let mut request_times = Vec::with_capacity(state.calls.len());
        for call in &state.calls {
            request_times.push(self.request_time(call, env, stack)?);
        }
        let composition = self
            .config
            .composition_overrides
            .get(&(owner.clone(), state.id.clone()))
            .copied()
            .unwrap_or(self.config.default_composition);
        Ok(match composition {
            TimeComposition::Sequential => request_times.iter().sum(),
            TimeComposition::Parallel => request_times.iter().fold(0.0_f64, |m, t| m.max(*t)),
        })
    }

    /// Time of one request: connector transport plus target execution
    /// (sequential — the connector wraps the call).
    fn request_time(
        &self,
        call: &ServiceCall,
        env: &Bindings,
        stack: &mut Vec<ServiceId>,
    ) -> Result<f64> {
        let mut callee_env = Bindings::new();
        for (name, expr) in &call.actual_params {
            callee_env.insert(name.clone(), expr.eval(env)?);
        }
        let target_time = self.latency_rec(&call.target, &callee_env, stack)?;
        let connector_time = match &call.connector {
            None => 0.0,
            Some(binding) => {
                let mut conn_env = Bindings::new();
                for (name, expr) in &binding.actual_params {
                    conn_env.insert(name.clone(), expr.eval(env)?);
                }
                self.latency_rec(&binding.connector, &conn_env, stack)?
            }
        };
        Ok(target_time + connector_time)
    }
}

/// Expected visit counts of each named state, starting from `Start`, on the
/// failure-free flow chain.
fn flow_visit_counts(
    composite: &CompositeService,
    env: &Bindings,
) -> Result<BTreeMap<StateId, f64>> {
    let mut builder = DtmcBuilder::new().state(StateId::End);
    let mut merged: BTreeMap<(StateId, StateId), f64> = BTreeMap::new();
    for t in composite.flow().transitions() {
        let p = t.probability.eval(env)?;
        if !(0.0..=1.0 + 1e-9).contains(&p) {
            return Err(PerfError::Model(
                archrel_model::ModelError::InvalidProbability {
                    value: p,
                    context: format!("transition `{}` -> `{}`", t.from, t.to),
                },
            ));
        }
        *merged.entry((t.from.clone(), t.to.clone())).or_insert(0.0) += p;
    }
    for ((from, to), p) in merged {
        if p > 0.0 {
            builder = builder.transition(from, to, p);
        }
    }
    let chain = builder.build()?;
    let analysis = AbsorbingAnalysis::new(&chain)?;
    let mut out = BTreeMap::new();
    for state in composite.flow().states() {
        let visits = analysis.expected_visits(&StateId::Start, &state.id)?;
        out.insert(state.id.clone(), visits);
    }
    Ok(out)
}

/// Expected latency **until absorption** (success *or* fail-stop) on the
/// failure-augmented chain: the same per-state times weighted by the
/// augmented chain's expected visit counts. Failures truncate executions,
/// so this is never larger than the failure-free expectation.
///
/// # Errors
///
/// Same conditions as [`LatencyEvaluator::expected_latency`], plus
/// reliability-engine errors while resolving the failure structure.
pub fn failure_aware_latency(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    config: PerfConfig,
) -> Result<f64> {
    let Service::Composite(composite) = assembly.require(service)? else {
        // Simple service: its whole execution is one shot; expected time is
        // its latency (failures are not time-resolved below this level).
        let perf = LatencyEvaluator::new(assembly, config);
        return perf.expected_latency(service, env);
    };

    // State failure probabilities from the reliability engine.
    let evaluator = archrel_core::Evaluator::new(assembly);
    let report = evaluator.report(service, env)?;
    let failures: BTreeMap<StateId, Probability> = report
        .states
        .iter()
        .map(|s| (s.state.clone(), s.failure_probability))
        .collect();
    let chain = augmented_chain(composite, env, &failures)?;
    let analysis = AbsorbingAnalysis::new(&chain)?;

    let perf = LatencyEvaluator::new(assembly, config);
    let mut stack = vec![service.clone()];
    let mut total = 0.0;
    for state in composite.flow().states() {
        let time = perf.state_time(composite.id(), state, env, &mut stack)?;
        let visits = analysis.expected_visits(
            &archrel_core::AugmentedState::Flow(StateId::Start),
            &archrel_core::AugmentedState::Flow(state.id.clone()),
        )?;
        total += time * visits;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_model::{
        catalog, paper, AssemblyBuilder, FlowBuilder, FlowState, Service, StateId,
    };

    #[test]
    fn simple_service_latency() {
        let assembly = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 2e9, 1e-12))
            .build()
            .unwrap();
        let perf = LatencyEvaluator::new(&assembly, PerfConfig::default());
        let t = perf
            .expected_latency(&"cpu".into(), &Bindings::new().with("n", 4e9))
            .unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rpc_latency_matches_hand_computation() {
        // RPC over the paper's remote assembly: sequential legs.
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let perf = LatencyEvaluator::new(&assembly, PerfConfig::default());
        let (ip, op) = (1000.0, 10.0);
        let t = perf
            .expected_latency(
                &paper::RPC.into(),
                &Bindings::new().with("ip", ip).with("op", op),
            )
            .unwrap();
        let expected = params.c * (ip + op) / params.s1
            + params.m * (ip + op) / params.bandwidth
            + params.c * (ip + op) / params.s2;
        assert!((t - expected).abs() < 1e-12, "{t} vs {expected}");
    }

    #[test]
    fn search_latency_weights_branches() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let perf = LatencyEvaluator::new(&assembly, PerfConfig::default());
        let list = 1024.0;
        let env = paper::search_bindings(4.0, list, 1.0);
        let t = perf.expected_latency(&paper::SEARCH.into(), &env).unwrap();
        // Hand computation: scan state always runs (log2 list ops on cpu1);
        // sort leg with probability q: lpc (l ops) + sort (list log2 list).
        let scan = list.log2() / params.s1;
        let sort = params.l / params.s1 + list * list.log2() / params.s1;
        let expected = scan + params.q * sort;
        assert!((t - expected).abs() < 1e-12, "{t} vs {expected}");
    }

    #[test]
    fn loops_multiply_visits() {
        // A state retried with probability 0.5 runs twice in expectation.
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "work",
                vec![archrel_model::ServiceCall::new("cpu")
                    .with_param(catalog::CPU_PARAM, Expr::num(1e9))],
            ))
            .transition(StateId::Start, "work", Expr::one())
            .transition("work", "work", Expr::num(0.5))
            .transition("work", StateId::End, Expr::num(0.5))
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 0.0))
            .service(Service::Composite(
                archrel_model::CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let perf = LatencyEvaluator::new(&assembly, PerfConfig::default());
        let t = perf
            .expected_latency(&"svc".into(), &Bindings::new())
            .unwrap();
        assert!((t - 2.0).abs() < 1e-12, "expected 2 visits x 1s, got {t}");
    }

    #[test]
    fn parallel_composition_takes_the_max() {
        let calls = vec![
            archrel_model::ServiceCall::new("cpu").with_param(catalog::CPU_PARAM, Expr::num(1e9)),
            archrel_model::ServiceCall::new("cpu").with_param(catalog::CPU_PARAM, Expr::num(3e9)),
        ];
        let flow = FlowBuilder::new()
            .state(FlowState::new("par", calls))
            .transition(StateId::Start, "par", Expr::one())
            .transition("par", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 0.0))
            .service(Service::Composite(
                archrel_model::CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();

        let seq = LatencyEvaluator::new(&assembly, PerfConfig::default())
            .expected_latency(&"svc".into(), &Bindings::new())
            .unwrap();
        assert!((seq - 4.0).abs() < 1e-12);

        let par_cfg =
            PerfConfig::default().with_composition("svc", "par", TimeComposition::Parallel);
        let par = LatencyEvaluator::new(&assembly, par_cfg)
            .expected_latency(&"svc".into(), &Bindings::new())
            .unwrap();
        assert!((par - 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_override_wins() {
        let assembly = AssemblyBuilder::new()
            .service(catalog::blackbox_service("api", "x", 0.01))
            .build()
            .unwrap();
        // Default: blackbox derives Zero latency.
        let t0 = LatencyEvaluator::new(&assembly, PerfConfig::default())
            .expected_latency(&"api".into(), &Bindings::new().with("x", 1.0))
            .unwrap();
        assert_eq!(t0, 0.0);
        let cfg = PerfConfig::default().with_latency("api", LatencyModel::Constant { time: 0.25 });
        let t1 = LatencyEvaluator::new(&assembly, cfg)
            .expected_latency(&"api".into(), &Bindings::new().with("x", 1.0))
            .unwrap();
        assert_eq!(t1, 0.25);
    }

    #[test]
    fn recursive_assembly_is_an_error() {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "again",
                vec![archrel_model::ServiceCall::new("svc")],
            ))
            .transition(StateId::Start, "again", Expr::one())
            .transition("again", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(Service::Composite(
                archrel_model::CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let err = LatencyEvaluator::new(&assembly, PerfConfig::default())
            .expected_latency(&"svc".into(), &Bindings::new())
            .unwrap_err();
        assert!(matches!(err, PerfError::RecursiveAssembly { .. }));
    }

    #[test]
    fn failure_aware_latency_is_shorter() {
        // Inflate failure rates so truncation is visible.
        let params = paper::PaperParams::default().with_phi_sort1(1e-4);
        let assembly = paper::local_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 8192.0, 1.0);
        let free = LatencyEvaluator::new(&assembly, PerfConfig::default())
            .expected_latency(&paper::SEARCH.into(), &env)
            .unwrap();
        let aware = failure_aware_latency(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            PerfConfig::default(),
        )
        .unwrap();
        assert!(aware < free, "aware {aware} !< free {free}");
        assert!(aware > 0.0);
    }
}
