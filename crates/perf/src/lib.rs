//! Compositional performance prediction — the QoS extension the paper's §6
//! sketches: "the presented ideas can also be extended, with appropriate
//! modifications, to other QoS aspects (e.g. performance)".
//!
//! The machinery mirrors the reliability engine one-for-one:
//!
//! - simple services publish a **latency law** ([`LatencyModel`]) of their
//!   abstract demand parameter — for the stock CPU/network resources the law
//!   falls out of the same attributes the failure law uses
//!   (`time = demand / capacity`);
//! - a composite service's expected latency is obtained from its flow:
//!   `E[T] = Σ_i  E[visits to state i] · E[time in state i]`, with expected
//!   visit counts from the fundamental matrix of the very same DTMC the
//!   reliability engine solves, and per-state times composed from the
//!   (recursively evaluated) request latencies under a sequential or
//!   parallel [`TimeComposition`];
//! - [`failure_aware_latency`] runs the same sum on the
//!   **failure-augmented** chain instead, giving the expected time until the
//!   invocation either completes or fail-stops — shorter than the
//!   failure-free latency when failures truncate long paths.
//!
//! A path-sampling validator ([`sample_mean_latency`]) plays the same role
//! the Monte Carlo simulator plays for reliability.
//!
//! # Examples
//!
//! ```
//! use archrel_model::paper;
//! use archrel_perf::{LatencyEvaluator, PerfConfig};
//!
//! # fn main() -> Result<(), archrel_perf::PerfError> {
//! let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
//! let perf = LatencyEvaluator::new(&assembly, PerfConfig::default());
//! let t = perf.expected_latency(
//!     &paper::SEARCH.into(),
//!     &paper::search_bindings(4.0, 4096.0, 1.0),
//! )?;
//! assert!(t > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod latency;
pub mod pareto;
mod sampling;

pub use error::PerfError;
pub use eval::{failure_aware_latency, LatencyEvaluator, PerfConfig, TimeComposition};
pub use latency::LatencyModel;
pub use sampling::sample_mean_latency;

/// Convenience result alias for fallible performance operations.
pub type Result<T> = std::result::Result<T, PerfError>;
